//===- squash/Rewriter.cpp - Squashed image construction ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Rewriter.h"

#include "support/Error.h"

#include <algorithm>

using namespace squash;
using namespace vea;

namespace {

class Rewriter {
public:
  Rewriter(const Program &Prog, const Cfg &G, const Partition &Part,
           const std::vector<uint8_t> &Safe, const Options &Opts)
      : Prog(Prog), G(G), Part(Part), Safe(Safe), Opts(Opts) {}

  SquashedProgram run();

private:
  /// Block id of the fallthrough successor, or -1.
  int32_t ftOf(unsigned B) const {
    if (!G.block(B).canFallThrough())
      return -1;
    const BlockRef &R = G.ref(B);
    if (R.BlockIdx + 1 >= Prog.Functions[R.FuncIdx].Blocks.size())
      return -1;
    return static_cast<int32_t>(B + 1);
  }

  /// True if a region block needs an explicit branch appended for its
  /// fallthrough edge (target not adjacent in the region layout).
  bool regionNeedsBr(unsigned B) const {
    int32_t Ft = ftOf(B);
    return Ft >= 0 && Part.RegionOf[Ft] != Part.RegionOf[B];
  }
  /// Same for a never-compressed block (targets that got compressed moved
  /// away; never-compressed neighbours stay adjacent).
  bool ncNeedsBr(unsigned B) const {
    int32_t Ft = ftOf(B);
    return Ft >= 0 && Part.RegionOf[Ft] >= 0;
  }

  /// True if call instruction \p I needs restore-stub treatment (becomes
  /// Bsrx). Every call out of compressed code does, unless the callee is
  /// buffer-safe (Section 6.1): even a callee in the *same* region may
  /// reach other regions and return with the buffer holding someone else,
  /// so only buffer-safety can justify a plain call.
  bool isStubCall(const Inst &I, int32_t /*Self*/) const {
    if (I.Op != Opcode::Bsr || I.Reloc != RelocKind::BranchDisp)
      return false;
    unsigned Callee = G.idOf(I.Symbol);
    if (Opts.BufferSafeCalls && Safe[G.functionOf(Callee)])
      return false; // Section 6.1.
    return true;
  }

  /// Final address external code should use to reach block \p B.
  uint32_t redirect(unsigned B) const {
    if (Part.RegionOf[B] < 0)
      return NCAddr[B];
    int32_t S = StubIndexOf[B];
    if (S < 0)
      reportFatalError("rewriter: reference to compressed block '" +
                       G.block(B).Label + "' without an entry stub");
    return StubAddrs[S];
  }

  static int32_t brDisp(uint32_t From, uint32_t Target) {
    int64_t D = (static_cast<int64_t>(Target) -
                 (static_cast<int64_t>(From) + 4)) /
                4;
    if ((static_cast<int64_t>(Target) - (static_cast<int64_t>(From) + 4)) %
            4 !=
        0)
      reportFatalError("rewriter: misaligned branch target");
    if (D < -(1 << 20) || D >= (1 << 20))
      reportFatalError("rewriter: branch displacement out of range");
    return static_cast<int32_t>(D);
  }

  uint32_t bufAddr(uint32_t ExpOff) const {
    return L.BufferBase + 4 + 4 * ExpOff;
  }

  void computeEntries();
  void computeExpandedOffsets();
  void layout();
  void lowerRegions();
  void emit();

  const Program &Prog;
  const Cfg &G;
  const Partition &Part;
  const std::vector<uint8_t> &Safe;
  const Options &Opts;

  SquashedProgram Out;
  RuntimeLayout L;

  std::vector<int32_t> ExpOffset;   ///< Per block: offset in region layout.
  std::vector<uint32_t> NCAddr;     ///< Per block: never-compressed address.
  std::vector<int32_t> StubIndexOf; ///< Per block: entry stub index or -1.
  std::vector<unsigned> StubBlocks; ///< Stub index -> block id.
  std::vector<int32_t> StubRegion;  ///< Stub index -> region.
  std::vector<uint32_t> StubAddrs;  ///< Stub index -> address.
  std::vector<uint32_t> ExpandedWords; ///< Per region.
  std::vector<std::vector<MInst>> Stored; ///< Per region: stored insts.
  std::unordered_map<std::string, uint32_t> Syms;
  uint32_t NCWords = 0;
  uint32_t DataBase = 0;
};

} // namespace

void Rewriter::computeEntries() {
  StubIndexOf.assign(G.numBlocks(), -1);
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    std::vector<unsigned> Entries = regionEntryPoints(
        G, Part.Regions[R].Blocks, Part.RegionOf, static_cast<int32_t>(R));
    for (unsigned E : Entries) {
      StubIndexOf[E] = static_cast<int32_t>(StubBlocks.size());
      StubBlocks.push_back(E);
      StubRegion.push_back(static_cast<int32_t>(R));
    }
  }
}

void Rewriter::computeExpandedOffsets() {
  ExpOffset.assign(G.numBlocks(), -1);
  ExpandedWords.assign(Part.Regions.size(), 0);
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    uint32_t Cur = 0;
    for (unsigned B : Part.Regions[R].Blocks) {
      ExpOffset[B] = static_cast<int32_t>(Cur);
      for (const auto &I : G.block(B).Insts)
        Cur += isStubCall(I, static_cast<int32_t>(R)) ? 2 : 1;
      if (regionNeedsBr(B))
        ++Cur;
    }
    ExpandedWords[R] = Cur;
    if (Cur + 1 > 0xFFFF)
      reportFatalError("rewriter: region too large for 16-bit tag offsets");
  }
}

void Rewriter::layout() {
  uint32_t Cursor = DefaultBase;

  // Never-compressed code, in original order.
  NCAddr.assign(G.numBlocks(), 0);
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (Part.RegionOf[B] >= 0)
      continue;
    NCAddr[B] = Cursor;
    uint32_t Words = G.block(B).size() + (ncNeedsBr(B) ? 1 : 0);
    Cursor += 4 * Words;
    NCWords += Words;
  }

  // Entry stubs (2 words each).
  StubAddrs.resize(StubBlocks.size());
  for (size_t S = 0; S != StubBlocks.size(); ++S) {
    StubAddrs[S] = Cursor;
    Cursor += 8;
  }

  // Decompressor region.
  L.DecompBase = Cursor;
  Cursor += 4 * Opts.DecompressorCodeWords;
  L.DecompEnd = Cursor;

  // Function offset table.
  L.OffsetTableBase = Cursor;
  if (Part.Regions.size() > 0xFFFF)
    reportFatalError("rewriter: too many regions for 16-bit tags");
  Cursor += 4 * static_cast<uint32_t>(Part.Regions.size());

  // Restore-stub area (4 words per slot).
  L.StubAreaBase = Cursor;
  L.StubSlots = Opts.MaxRestoreStubs;
  Cursor += 16 * L.StubSlots;

  // Runtime buffer: jump slot + the largest decompressed region.
  uint32_t MaxExpanded = 0;
  for (uint32_t W : ExpandedWords)
    MaxExpanded = std::max(MaxExpanded, W);
  L.BufferBase = Cursor;
  L.BufferWords = 1 + MaxExpanded;
  Cursor += 4 * L.BufferWords;

  // Data objects.
  DataBase = Cursor;
  for (const auto &D : Prog.Data) {
    uint32_t Align = D.Align ? D.Align : 4;
    Cursor = (Cursor + Align - 1) / Align * Align;
    Syms[D.Name] = Cursor;
    Cursor += static_cast<uint32_t>(D.Bytes.size());
  }

  // Compressed blob (placed last so its size does not perturb any address
  // that the compressed instructions themselves encode).
  Cursor = (Cursor + 3) & ~3u;
  L.BlobBase = Cursor;

  // Final symbol map for code.
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (Part.RegionOf[B] < 0)
      Syms[G.block(B).Label] = NCAddr[B];
    else if (StubIndexOf[B] >= 0)
      Syms[G.block(B).Label] = StubAddrs[StubIndexOf[B]];
    // Compressed blocks without stubs are unreferenced from outside; any
    // attempted reference faults in encodeInst, catching partition bugs.
  }
}

void Rewriter::lowerRegions() {
  Stored.resize(Part.Regions.size());
  Out.Regions.resize(Part.Regions.size());
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    int32_t Self = static_cast<int32_t>(R);
    auto &Seq = Stored[R];
    uint32_t Cur = 0;
    for (unsigned B : Part.Regions[R].Blocks) {
      for (const auto &I : G.block(B).Insts) {
        uint32_t A = bufAddr(Cur);
        if (isStubCall(I, Self)) {
          // Stored as Bsrx; the decompressor expands it to
          //   bsr ra, CreateStub ; br r31, <callee>
          // with the stored displacement belonging to the BR (second
          // word, at A + 4).
          unsigned Callee = G.idOf(I.Symbol);
          MInst M = makeBranch(Opcode::Bsrx, I.Ra,
                               brDisp(A + 4, redirect(Callee)));
          Seq.push_back(M);
          ++Out.Regions[R].ExternalCalls;
          Cur += 2;
          continue;
        }
        if (I.Reloc == RelocKind::BranchDisp) {
          unsigned T = G.idOf(I.Symbol);
          uint32_t Target;
          if (I.Op != Opcode::Bsr && Part.RegionOf[T] == Self) {
            // Intra-region branches stay inside the buffer. (Calls never
            // take this path: see isStubCall.)
            Target = bufAddr(static_cast<uint32_t>(ExpOffset[T]));
          } else {
            Target = redirect(T);
            if (I.Op == Opcode::Bsr)
              ++Out.Regions[R].BufferSafeCalls;
          }
          Seq.push_back(makeBranch(I.Op, I.Ra, brDisp(A, Target)));
          Cur += 1;
          continue;
        }
        // Everything else (including hi16/lo16 address materialization,
        // which resolves to absolute values) lowers position-independently.
        Seq.push_back(decode(encodeInst(I, A, Syms)));
        Cur += 1;
      }
      if (regionNeedsBr(B)) {
        int32_t Ft = ftOf(B);
        uint32_t A = bufAddr(Cur);
        uint32_t Target = Part.RegionOf[Ft] == Self
                              ? bufAddr(static_cast<uint32_t>(ExpOffset[Ft]))
                              : redirect(static_cast<unsigned>(Ft));
        Seq.push_back(makeBranch(Opcode::Br, RegZero, brDisp(A, Target)));
        Cur += 1;
      }
    }
    Out.Regions[R].ExpandedWords = ExpandedWords[R];
    Out.Regions[R].StoredInstructions = static_cast<uint32_t>(Seq.size());
  }
}

void Rewriter::emit() {
  // Encode the regions.
  StreamCodecs::Options CO;
  CO.MoveToFront = Opts.MoveToFront;
  CO.DeltaDisplacements = Opts.DeltaDisplacements;
  Out.Codecs = StreamCodecs::build(Stored, CO);
  vea::BitWriter W;
  Out.Codecs.serializeTables(W);
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    Out.Regions[R].BitOffset = static_cast<uint32_t>(W.bitSize());
    Out.Codecs.encodeRegion(Stored[R], W);
  }
  std::vector<uint8_t> Blob = W.takeBytes();
  L.BlobBytes = static_cast<uint32_t>(Blob.size());

  Image &Img = Out.Img;
  Img.Base = DefaultBase;
  Img.Bytes.assign(L.BlobBase + L.BlobBytes - DefaultBase, 0);
  Img.CodeBytes = DataBase - DefaultBase;
  Img.Symbols = Syms;

  // Never-compressed code.
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (Part.RegionOf[B] >= 0)
      continue;
    uint32_t PC = NCAddr[B];
    for (const auto &I : G.block(B).Insts) {
      Img.setWord(PC, encodeInst(I, PC, Syms));
      PC += 4;
    }
    if (ncNeedsBr(B)) {
      int32_t Ft = ftOf(B);
      MInst Br = makeBranch(Opcode::Br, RegZero,
                            brDisp(PC, redirect(static_cast<unsigned>(Ft))));
      Img.setWord(PC, encode(Br));
    }
  }

  // Entry stubs: bsr r25, Decompress(r25) ; tag.
  for (size_t S = 0; S != StubBlocks.size(); ++S) {
    uint32_t Addr = StubAddrs[S];
    unsigned Block = StubBlocks[S];
    MInst Call = makeBranch(
        Opcode::Bsr, 25,
        brDisp(Addr, L.decompressEntry(25)));
    Img.setWord(Addr, encode(Call));
    uint32_t Tag = (static_cast<uint32_t>(StubRegion[S]) << 16) |
                   (1 + static_cast<uint32_t>(ExpOffset[Block]));
    Img.setWord(Addr + 4, Tag);
    Out.StubOf[G.block(Block).Label] = Addr;
  }

  // The decompressor region is reserved, never fetched (trap dispatch);
  // fill with the illegal sentinel word so stray jumps fault loudly.
  for (uint32_t A = L.DecompBase; A != L.DecompEnd; A += 4)
    Img.setWord(A, 0);

  // Function offset table: absolute bit offsets into the blob.
  for (size_t R = 0; R != Part.Regions.size(); ++R)
    Img.setWord(L.OffsetTableBase + 4 * static_cast<uint32_t>(R),
                Out.Regions[R].BitOffset);

  // Data.
  for (const auto &D : Prog.Data) {
    uint32_t Addr = Syms.at(D.Name);
    std::copy(D.Bytes.begin(), D.Bytes.end(),
              Img.Bytes.begin() + (Addr - Img.Base));
    for (const auto &SW : D.SymWords) {
      auto It = Syms.find(SW.Symbol);
      if (It == Syms.end())
        reportFatalError("rewriter: unresolved data symbol '" + SW.Symbol +
                         "'");
      Img.setWord(Addr + SW.Offset,
                  It->second + static_cast<uint32_t>(SW.Addend));
    }
  }

  // Compressed blob.
  std::copy(Blob.begin(), Blob.end(),
            Img.Bytes.begin() + (L.BlobBase - Img.Base));

  Img.EntryPC = Syms.at(Prog.EntryFunction);

  // Per-region entry-stub counts.
  for (size_t S = 0; S != StubBlocks.size(); ++S)
    ++Out.Regions[StubRegion[S]].NumEntryStubs;

  // Footprint.
  FootprintBreakdown &F = Out.Footprint;
  F.NeverCompressedWords = NCWords;
  F.EntryStubWords = 2 * static_cast<uint32_t>(StubBlocks.size());
  F.DecompressorWords = Opts.DecompressorCodeWords;
  F.OffsetTableWords = static_cast<uint32_t>(Part.Regions.size());
  F.StubAreaWords = 4 * L.StubSlots;
  F.BufferWords = L.BufferWords;
  F.CompressedBytes = L.BlobBytes;
}

SquashedProgram Rewriter::run() {
  computeEntries();
  computeExpandedOffsets();
  layout();
  lowerRegions();
  emit();
  Out.Layout = L;
  Out.Opts = Opts;
  return std::move(Out);
}

SquashedProgram squash::rewriteProgram(const Program &Prog, const Cfg &G,
                                       const Partition &Part,
                                       const std::vector<uint8_t> &Safe,
                                       const Options &Opts) {
  if (Safe.size() != G.numFunctions())
    reportFatalError("rewriter: buffer-safe vector does not match program");
  Rewriter RW(Prog, G, Part, Safe, Opts);
  return RW.run();
}
