//===- squash/Unswitch.cpp - Jump-table unswitching -----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Unswitch.h"

#include <unordered_map>
#include <unordered_set>

using namespace squash;
using namespace vea;

Expected<UnswitchStats>
squash::unswitchJumpTables(Program &Prog, std::vector<uint8_t> &Candidate,
                           bool EnableUnswitch) {
  UnswitchStats Stats;

  // Block label -> id map consistent with Cfg ordering.
  std::unordered_map<std::string, unsigned> IdOf;
  unsigned NumBlocks = 0;
  for (const auto &F : Prog.Functions)
    for (const auto &B : F.Blocks)
      IdOf[B.Label] = NumBlocks++;
  if (Candidate.size() != NumBlocks)
    return Status::error(StatusCode::InvalidArgument,
                         "unswitch: candidate set does not match program");

  std::unordered_set<std::string> TablesToRemove;

  unsigned Id = 0;
  for (auto &F : Prog.Functions) {
    for (auto &B : F.Blocks) {
      unsigned Self = Id++;
      if (!B.Switch)
        continue;
      // A switch block that is not under consideration keeps its table;
      // the table entries are symbolic and are relocated to entry stubs if
      // targets get compressed.
      if (!Candidate[Self])
        continue;

      const SwitchInfo &SI = *B.Switch;
      bool CanUnswitch = EnableUnswitch && SI.SizeKnown &&
                         SI.Targets.size() <= 256 &&
                         SI.SeqLen <= B.Insts.size();
      if (!CanUnswitch) {
        // Exclude the block and all possible targets (Section 6.2).
        Candidate[Self] = 0;
        ++Stats.BlocksExcluded;
        for (const auto &T : SI.Targets) {
          auto It = IdOf.find(T);
          if (It != IdOf.end() && Candidate[It->second]) {
            Candidate[It->second] = 0;
            ++Stats.BlocksExcluded;
          }
        }
        continue;
      }

      // Replace the trailing table-jump idiom with a compare-and-branch
      // chain on the (still unclobbered) index register.
      B.Insts.resize(B.Insts.size() - SI.SeqLen);
      for (size_t C = 0; C + 1 < SI.Targets.size(); ++C) {
        Inst Cmp;
        Cmp.Op = Opcode::Cmpeqi;
        Cmp.Rc = SI.ScratchReg;
        Cmp.Ra = SI.IndexReg;
        Cmp.Imm = static_cast<int32_t>(C);
        B.Insts.push_back(Cmp);
        Inst Bne;
        Bne.Op = Opcode::Bne;
        Bne.Ra = SI.ScratchReg;
        Bne.Symbol = SI.Targets[C];
        Bne.Reloc = RelocKind::BranchDisp;
        B.Insts.push_back(Bne);
      }
      Inst Last;
      Last.Op = Opcode::Br;
      Last.Ra = RegZero;
      Last.Symbol = SI.Targets.back();
      Last.Reloc = RelocKind::BranchDisp;
      B.Insts.push_back(Last);

      TablesToRemove.insert(SI.TableSymbol);
      B.Switch.reset();
      ++Stats.Unswitched;
    }
  }

  if (!TablesToRemove.empty()) {
    std::vector<DataObject> Kept;
    Kept.reserve(Prog.Data.size());
    for (auto &D : Prog.Data) {
      if (TablesToRemove.count(D.Name)) {
        ++Stats.TablesReclaimed;
        Stats.TableBytesReclaimed += static_cast<unsigned>(D.Bytes.size());
      } else {
        Kept.push_back(std::move(D));
      }
    }
    Prog.Data = std::move(Kept);
  }
  return Stats;
}

void UnswitchStats::exportMetrics(vea::MetricsRegistry &R,
                                  const std::string &Prefix) const {
  R.setCounter(Prefix + "unswitched", Unswitched);
  R.setCounter(Prefix + "tables_reclaimed", TablesReclaimed);
  R.setCounter(Prefix + "table_bytes_reclaimed", TableBytesReclaimed);
  R.setCounter(Prefix + "blocks_excluded", BlocksExcluded);
}
