//===- squash/Inspect.h - Squashed-image inspection ------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// objdump-style textual reports over squashed programs: the segment map
/// (Figure 1(b)'s code organization), entry-stub listings with decoded
/// tags, and per-region disassembly of the *stored* (compressed)
/// instruction sequences including the Bsrx pseudo-instructions the
/// decompressor expands. Used by the `squash_tool` example and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_INSPECT_H
#define SQUASH_SQUASH_INSPECT_H

#include "squash/Rewriter.h"

#include <string>

namespace squash {

/// Renders the segment map: address ranges and sizes of each part of the
/// squashed image, with the footprint accounting.
std::string formatSegmentMap(const SquashedProgram &SP);

/// Renders every entry stub: address, target region, buffer offset, and
/// the label it stands for.
std::string formatEntryStubs(const SquashedProgram &SP);

/// Disassembles the stored instruction sequence of region \p Index by
/// decoding it from the image's compressed blob (exactly what the runtime
/// decompressor reads). Bsrx rows are annotated with their expansion.
std::string formatRegion(const SquashedProgram &SP, unsigned Index);

/// Renders per-region summary rows: stored/expanded sizes, entry stubs,
/// call counts, bit offsets.
std::string formatRegionTable(const SquashedProgram &SP);

/// Renders the function placement the layout pass chose (SquashedProgram::
/// FuncLayout): one row per function in image order with its original
/// index, placed address, and how far it moved from program order. Reports
/// identity placement when the pass was off or chose not to reorder.
std::string formatFunctionLayout(const SquashedProgram &SP);

} // namespace squash

#endif // SQUASH_SQUASH_INSPECT_H
