//===- squash/BufferSafe.cpp - Buffer-safety analysis ---------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/BufferSafe.h"

using namespace squash;
using vea::Cfg;

std::vector<uint8_t> squash::analyzeBufferSafe(const Cfg &G,
                                               const Partition &Part,
                                               BufferSafeStats *Stats) {
  unsigned NumFuncs = G.numFunctions();
  std::vector<uint8_t> Unsafe(NumFuncs, 0);

  // Seed: functions containing a compressed block invoke the decompressor
  // when entered; functions with indirect calls may reach anything.
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    unsigned F = G.functionOf(Id);
    if (Part.RegionOf[Id] >= 0)
      Unsafe[F] = 1;
    if (G.hasIndirectCall(Id))
      Unsafe[F] = 1;
  }

  // Propagate backwards over the call graph: a caller of an unsafe callee
  // is unsafe. Iterate to a fixpoint (the graph is small).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
      unsigned F = G.functionOf(Id);
      if (Unsafe[F])
        continue;
      for (unsigned Callee : G.callees(Id)) {
        if (Unsafe[G.functionOf(Callee)]) {
          Unsafe[F] = 1;
          Changed = true;
          break;
        }
      }
    }
  }

  std::vector<uint8_t> Safe(NumFuncs);
  for (unsigned F = 0; F != NumFuncs; ++F)
    Safe[F] = !Unsafe[F];

  if (Stats) {
    Stats->Functions = NumFuncs;
    Stats->SafeFunctions = 0;
    for (unsigned F = 0; F != NumFuncs; ++F)
      if (Safe[F])
        ++Stats->SafeFunctions;
    Stats->CallSitesFromRegions = 0;
    Stats->SafeCallSitesFromRegions = 0;
    for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
      if (Part.RegionOf[Id] < 0)
        continue;
      for (unsigned Callee : G.callees(Id)) {
        // Intra-region calls need no stub regardless.
        if (Part.sameRegion(Id, Callee))
          continue;
        ++Stats->CallSitesFromRegions;
        if (Safe[G.functionOf(Callee)])
          ++Stats->SafeCallSitesFromRegions;
      }
    }
  }
  return Safe;
}

void BufferSafeStats::exportMetrics(vea::MetricsRegistry &R,
                                    const std::string &Prefix) const {
  R.setCounter(Prefix + "functions", Functions);
  R.setCounter(Prefix + "safe_functions", SafeFunctions);
  R.setCounter(Prefix + "region_call_sites", CallSitesFromRegions);
  R.setCounter(Prefix + "safe_region_call_sites", SafeCallSitesFromRegions);
}
