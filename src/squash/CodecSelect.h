//===- squash/CodecSelect.h - Per-region codec selection -------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The codec-select pass: one of the "other algorithms for compression"
/// the paper's future work contemplates, made concrete. The pipeline now
/// carries three region coders (huff/Codec.h) — the paper's splitting-
/// streams Huffman coder, a pattern-dictionary coder, and an order-1
/// opcode-context coder — and this pass picks one per region by trial-
/// encoding the region with each and minimizing the modeled objective
///
///   payload bits x decode cycles
///
/// (a region's whole cost: it must be both stored and re-expanded on every
/// buffer miss). Ties break toward the lowest CodecKind id, so selection
/// is deterministic. A final safety valve re-models the full blob under
/// the chosen plan — including each used codec's side tables and the
/// Huffman codes rebuilt over only their remaining regions — and keeps the
/// plan only if it is no worse than all-Huffman on bytes x cycles, so
/// "auto" can never regress the paper's baseline coder.
///
/// Options::Codec selects the mode: "huffman" (empty plan, byte-identical
/// legacy blob), "pattern" / "context" (force every region), or "auto".
/// Any other name is an InvalidArgument pipeline failure.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_CODECSELECT_H
#define SQUASH_SQUASH_CODECSELECT_H

#include "huff/Codec.h"
#include "squash/CostModel.h"
#include "squash/Options.h"
#include "squash/Pipeline.h"

#include <cstdint>

namespace squash {

// codecDecodeCycles — the shared fill-pricing formula this pass optimizes
// against — lives in squash/CostModel.h next to the constants it uses.

/// The "codec-select" pass (between buffer-safe and rewrite). Writes its
/// verdict into PipelineContext::Plan; RewritePass hands the plan to
/// rewriteProgram. Disabled (Options::DisabledPasses) or in "huffman"
/// mode it leaves the plan empty, reproducing the legacy blob exactly.
class CodecSelectPass final : public Pass {
public:
  const char *name() const override { return "codec-select"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::CodecSelectSeconds;
  }
  vea::Status run(PipelineContext &Ctx) override;
  vea::Status runDisabled(PipelineContext &Ctx) override;
};

} // namespace squash

#endif // SQUASH_SQUASH_CODECSELECT_H
