//===- squash/Telemetry.h - Cycle-attribution ledger -----------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle-attribution ledger: every simulated cycle of a squashed run
/// charged to exactly one category, with a conservation identity
///
///   GuestExecute + TrapSetup + sum(DecodeByCodec) + IcacheFlush
///     + IcacheMiss + RestoreStub  ==  Machine total cycles
///
/// that tests and bench/stat_attribution enforce on every workload. The
/// ledger is derived, not sampled: the runtime increments a Stats counter
/// adjacent to each M.addCycles() call (Runtime.cpp), and the Machine's
/// only other charge is one cycle per retired instruction, so the identity
/// holds for every run outcome — clean halt, instruction-limit stop, or
/// fault.
///
/// Wasted prefetch is structurally zero *simulated* cycles — decode-ahead
/// runs on a host worker thread off the guest's critical path and a
/// discarded staging never reaches guest memory — so the ledger reports
/// the wasted work in host nanoseconds alongside the cycle categories.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_TELEMETRY_H
#define SQUASH_SQUASH_TELEMETRY_H

#include "squash/Driver.h"
#include "support/Metrics.h"

#include <array>
#include <string>

namespace squash {

/// Where every simulated cycle of one run went. Built from a SquashedRun
/// by buildCycleLedger.
struct CycleLedger {
  uint64_t Total = 0;        ///< Machine cycles for the whole run.
  uint64_t GuestExecute = 0; ///< One cycle per retired guest instruction.
  uint64_t TrapSetup = 0;    ///< Decompressor entry setup (hit or fill).
  std::array<uint64_t, NumCodecKinds> DecodeByCodec = {};
                             ///< Pure decode work, per region coder.
  uint64_t IcacheFlush = 0;  ///< Post-fill flat icache flush charges
                             ///< (zero when the fetch model is on).
  uint64_t IcacheMiss = 0;   ///< Modeled fetch-miss penalties (zero when
                             ///< the flat flush charge is in effect).
  uint64_t RestoreStub = 0;  ///< CreateStub trap charges.

  /// Host-side costs with no simulated-cycle footprint, reported so the
  /// "wasted prefetch" category is visibly zero by design rather than
  /// silently absent.
  uint64_t WastedPrefetchCycles = 0; ///< Always 0; see file comment.
  uint64_t HostDecodeNanos = 0;      ///< Demand + consumed prefetch decode.
  uint64_t WastedPrefetches = 0;     ///< Staged decodes discarded.

  /// Sum of every cycle category (everything but the host-nanos fields).
  uint64_t attributed() const {
    uint64_t N = GuestExecute + TrapSetup + IcacheFlush + IcacheMiss +
                 RestoreStub + WastedPrefetchCycles;
    for (uint64_t D : DecodeByCodec)
      N += D;
    return N;
  }

  /// The conservation identity: no unattributed and no double-charged
  /// cycles.
  bool conserves() const { return attributed() == Total; }
};

/// Derives the ledger for \p R (any outcome: halt, limit, fault).
CycleLedger buildCycleLedger(const SquashedRun &R);

/// Renders a one-run text attribution report (category, cycles, percent),
/// with \p Label naming the run.
std::string renderAttributionReport(const CycleLedger &L,
                                    const std::string &Label);

/// Registers every ledger category under \p Prefix, plus
/// `<Prefix>conserved` (1/0).
void exportLedgerMetrics(vea::MetricsRegistry &R, const CycleLedger &L,
                         const std::string &Prefix = "ledger.");

} // namespace squash

#endif // SQUASH_SQUASH_TELEMETRY_H
