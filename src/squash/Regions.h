//===- squash/Regions.h - Compressible region formation --------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4 of the paper: partition a subset of the compressible blocks
/// into regions. Exact optimization is NP-hard (PARTITION reduces to it), so
/// squash uses the paper's heuristic: depth-first-search trees of
/// compressible blocks from a single function, bounded by K instructions,
/// kept when the entry-stub cost E is below the estimated savings (1-γ)I;
/// followed by a greedy packing pass that merges the pair of regions with
/// the highest savings until no profitable merge remains.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_REGIONS_H
#define SQUASH_SQUASH_REGIONS_H

#include "ir/IR.h"
#include "squash/Options.h"
#include "support/Status.h"

#include <cstdint>
#include <vector>

namespace squash {

/// A compressible region: an ordered set of block ids (original program
/// order, which maximizes preserved fallthroughs when the region is laid
/// out in the runtime buffer).
struct Region {
  std::vector<unsigned> Blocks;
  uint32_t sizeWords(const vea::Cfg &G) const {
    uint32_t N = 0;
    for (unsigned B : Blocks)
      N += G.block(B).size();
    return N;
  }
};

/// The partition: region list plus a per-block region index (-1 = never
/// compressed).
struct Partition {
  std::vector<Region> Regions;
  std::vector<int32_t> RegionOf; ///< Indexed by block id; -1 if none.

  bool sameRegion(unsigned A, unsigned B) const {
    return RegionOf[A] >= 0 && RegionOf[A] == RegionOf[B];
  }
  uint64_t compressedInstructions(const vea::Cfg &G) const {
    uint64_t N = 0;
    for (const auto &R : Regions)
      N += R.sizeWords(G);
    return N;
  }
};

struct RegionStats {
  uint64_t InitialRegions = 0;  ///< Accepted DFS trees before packing.
  uint64_t PackedRegions = 0;   ///< Regions after packing.
  uint64_t Merges = 0;
  uint64_t RejectedRoots = 0;   ///< DFS roots whose tree was unprofitable.
  uint64_t CompressibleInstructions = 0;
};

/// Identifies the entry points of a hypothetical region \p Blocks: blocks
/// entered from outside the region by a branch/fallthrough edge, called
/// from outside, address-taken, or the program entry. Exposed for the
/// rewriter, the cost model, and tests.
std::vector<unsigned> regionEntryPoints(const vea::Cfg &G,
                                        const std::vector<unsigned> &Blocks,
                                        const std::vector<int32_t> &RegionOf,
                                        int32_t SelfRegion);

/// Forms regions over the candidate blocks \p Compressible (Section 4).
/// Fails with InvalidArgument if \p Compressible does not have one flag per
/// block.
vea::Expected<Partition> formRegions(const vea::Cfg &G,
                                     const std::vector<uint8_t> &Compressible,
                                     const Options &Opts,
                                     RegionStats *Stats = nullptr);

} // namespace squash

#endif // SQUASH_SQUASH_REGIONS_H
