//===- squash/Regions.h - Compressible region formation --------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4 of the paper: partition a subset of the compressible blocks
/// into regions. Exact optimization is NP-hard (PARTITION reduces to it), so
/// squash uses the paper's heuristic: depth-first-search trees of
/// compressible blocks from a single function, bounded by K instructions,
/// kept when the entry-stub cost E is below the estimated savings (1-γ)I;
/// followed by a greedy packing pass that merges the pair of regions with
/// the highest savings until no profitable merge remains.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_REGIONS_H
#define SQUASH_SQUASH_REGIONS_H

#include "ir/IR.h"
#include "squash/Options.h"
#include "support/Metrics.h"
#include "support/Status.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace squash {

/// A compressible region: an ordered set of block ids (original program
/// order, which maximizes preserved fallthroughs when the region is laid
/// out in the runtime buffer).
struct Region {
  std::vector<unsigned> Blocks;
  uint32_t sizeWords(const vea::Cfg &G) const {
    uint32_t N = 0;
    for (unsigned B : Blocks)
      N += G.block(B).size();
    return N;
  }
};

/// The partition: region list plus a per-block region index (-1 = never
/// compressed).
struct Partition {
  std::vector<Region> Regions;
  std::vector<int32_t> RegionOf; ///< Indexed by block id; -1 if none.

  bool sameRegion(unsigned A, unsigned B) const {
    return RegionOf[A] >= 0 && RegionOf[A] == RegionOf[B];
  }
  uint64_t compressedInstructions(const vea::Cfg &G) const {
    uint64_t N = 0;
    for (const auto &R : Regions)
      N += R.sizeWords(G);
    return N;
  }
};

struct RegionStats {
  uint64_t InitialRegions = 0;  ///< Accepted DFS trees before packing.
  uint64_t PackedRegions = 0;   ///< Regions after packing.
  uint64_t Merges = 0;
  uint64_t RejectedRoots = 0;   ///< DFS roots whose tree was unprofitable.
  uint64_t CompressibleInstructions = 0;

  /// Registers every field as a counter under \p Prefix (DESIGN.md §12).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "squash.regions.") const;
};

/// Precomputed call-graph reverse edges and entry-ness inputs. Building it
/// walks every block and edge once (O(blocks + edges)); per-region entry
/// queries against a built analysis are then proportional to the region,
/// not the program. Construct once per Cfg and reuse across every
/// regionEntryPoints / isEntry query (the formation, packing, and rewrite
/// phases all share one).
class RegionEntryAnalysis {
public:
  explicit RegionEntryAnalysis(const vea::Cfg &G);

  /// True if block \p B must have an entry stub when compressed into
  /// region \p Self under the assignment \p RegionOf: some entry source
  /// lies outside the region. Any caller at all forces a stub, because
  /// calls from compressed code always route through the callee's entry
  /// stub (only buffer-safe callees are called directly, and those are
  /// never compressed).
  bool isEntry(unsigned B, const std::vector<int32_t> &RegionOf,
               int32_t Self) const;

  /// Region ids (with -1 for never-compressed) of all entry sources of
  /// block \p B outside region \p Self. Address-taken blocks and the
  /// program entry report the pseudo-source -2, which no merge can absorb.
  void externalSources(unsigned B, const std::vector<int32_t> &RegionOf,
                       int32_t Self, std::unordered_set<int32_t> &Out) const;

  const std::vector<unsigned> &callersOf(unsigned B) const {
    return Callers[B];
  }
  unsigned programEntry() const { return ProgramEntry; }

private:
  const vea::Cfg &G;
  std::vector<std::vector<unsigned>> Callers;
  unsigned ProgramEntry = 0;
};

/// Identifies the entry points of a hypothetical region \p Blocks: blocks
/// entered from outside the region by a branch/fallthrough edge, called
/// from outside, address-taken, or the program entry. Exposed for the
/// rewriter, the cost model, and tests.
std::vector<unsigned> regionEntryPoints(const RegionEntryAnalysis &A,
                                        const std::vector<unsigned> &Blocks,
                                        const std::vector<int32_t> &RegionOf,
                                        int32_t SelfRegion);

/// Convenience overload that builds the analysis itself. One-shot callers
/// only: querying many regions this way re-derives the call-graph reverse
/// edges (O(blocks + edges)) per call, which is quadratic over a program —
/// build a RegionEntryAnalysis once instead.
std::vector<unsigned> regionEntryPoints(const vea::Cfg &G,
                                        const std::vector<unsigned> &Blocks,
                                        const std::vector<int32_t> &RegionOf,
                                        int32_t SelfRegion);

/// Forms regions over the candidate blocks \p Compressible (Section 4).
/// Fails with InvalidArgument if \p Compressible does not have one flag per
/// block.
vea::Expected<Partition> formRegions(const vea::Cfg &G,
                                     const std::vector<uint8_t> &Compressible,
                                     const Options &Opts,
                                     RegionStats *Stats = nullptr);

} // namespace squash

#endif // SQUASH_SQUASH_REGIONS_H
