//===- asm/Assembler.cpp - VEA-32 textual assembler -----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

using namespace vea;

namespace {

/// Splits one source line into tokens. Parentheses and commas are
/// separators; a parenthesized register is tagged so memory operands parse
/// unambiguously.
struct Token {
  std::string Text;
  bool Paren = false; ///< Token appeared inside ( ).
};

class Assembler {
public:
  ErrorOr<Program> run(const std::string &Source);

private:
  bool tokenize(const std::string &Line, std::vector<Token> &Toks,
                std::string &Err);
  bool handleLine(const std::vector<Token> &Toks, std::string &Err);
  bool handleDirective(const std::vector<Token> &Toks, std::string &Err);
  bool handleInst(const std::vector<Token> &Toks, std::string &Err);

  bool parseReg(const Token &T, unsigned &Reg, std::string &Err);
  bool parseInt(const std::string &S, int64_t &Value, std::string &Err);

  BasicBlock *curBlock() {
    if (!CurFunc || CurFunc->Blocks.empty())
      return nullptr;
    return &CurFunc->Blocks.back();
  }

  Program P;
  Function *CurFunc = nullptr;
  DataObject *CurData = nullptr;
};

} // namespace

bool Assembler::tokenize(const std::string &Line, std::vector<Token> &Toks,
                         std::string &Err) {
  size_t I = 0, N = Line.size();
  bool InParen = false;
  while (I < N) {
    char C = Line[I];
    if (C == ';' || C == '#')
      break;
    if (std::isspace(static_cast<unsigned char>(C)) || C == ',') {
      ++I;
      continue;
    }
    if (C == '(') {
      InParen = true;
      ++I;
      continue;
    }
    if (C == ')') {
      InParen = false;
      ++I;
      continue;
    }
    if (C == '"') {
      std::string S;
      ++I;
      while (I < N && Line[I] != '"')
        S.push_back(Line[I++]);
      if (I == N) {
        Err = "unterminated string literal";
        return false;
      }
      ++I;
      Toks.push_back({"\"" + S, false});
      continue;
    }
    std::string T;
    while (I < N && !std::isspace(static_cast<unsigned char>(Line[I])) &&
           Line[I] != ',' && Line[I] != '(' && Line[I] != ')' &&
           Line[I] != ';' && Line[I] != '#')
      T.push_back(Line[I++]);
    Toks.push_back({T, InParen});
  }
  return true;
}

bool Assembler::parseReg(const Token &T, unsigned &Reg, std::string &Err) {
  const std::string &S = T.Text;
  if (S.size() < 2 || (S[0] != 'r' && S[0] != 'R')) {
    Err = "expected register, got '" + S + "'";
    return false;
  }
  char *End = nullptr;
  long V = std::strtol(S.c_str() + 1, &End, 10);
  if (*End != '\0' || V < 0 || V >= static_cast<long>(NumRegs)) {
    Err = "bad register '" + S + "'";
    return false;
  }
  Reg = static_cast<unsigned>(V);
  return true;
}

bool Assembler::parseInt(const std::string &S, int64_t &Value,
                         std::string &Err) {
  if (S.empty()) {
    Err = "expected integer";
    return false;
  }
  char *End = nullptr;
  Value = std::strtoll(S.c_str(), &End, 0);
  if (*End != '\0') {
    Err = "bad integer '" + S + "'";
    return false;
  }
  return true;
}

bool Assembler::handleDirective(const std::vector<Token> &Toks,
                                std::string &Err) {
  const std::string &D = Toks[0].Text;
  auto Need = [&](size_t N) {
    if (Toks.size() < N + 1) {
      Err = "directive " + D + " needs " + std::to_string(N) + " operand(s)";
      return false;
    }
    return true;
  };

  if (D == ".program") {
    if (!Need(1))
      return false;
    P.Name = Toks[1].Text;
    return true;
  }
  if (D == ".entry") {
    if (!Need(1))
      return false;
    P.EntryFunction = Toks[1].Text;
    return true;
  }
  if (D == ".func") {
    if (!Need(1))
      return false;
    Function F;
    F.Name = Toks[1].Text;
    BasicBlock Entry;
    Entry.Label = F.Name;
    F.Blocks.push_back(std::move(Entry));
    P.Functions.push_back(std::move(F));
    CurFunc = &P.Functions.back();
    CurData = nullptr;
    return true;
  }
  if (D == ".data") {
    if (!Need(1))
      return false;
    DataObject Obj;
    Obj.Name = Toks[1].Text;
    if (Toks.size() > 2) {
      int64_t A;
      if (!parseInt(Toks[2].Text, A, Err))
        return false;
      Obj.Align = static_cast<uint32_t>(A);
    }
    P.Data.push_back(std::move(Obj));
    CurData = &P.Data.back();
    CurFunc = nullptr;
    return true;
  }
  if (D == ".word" || D == ".byte" || D == ".zero" || D == ".addr" ||
      D == ".ascii") {
    if (!CurData) {
      Err = D + " outside a .data object";
      return false;
    }
    if (D == ".ascii") {
      if (!Need(1))
        return false;
      const std::string &S = Toks[1].Text;
      if (S.empty() || S[0] != '"') {
        Err = ".ascii needs a string literal";
        return false;
      }
      for (size_t I = 1; I != S.size(); ++I)
        CurData->Bytes.push_back(static_cast<uint8_t>(S[I]));
      return true;
    }
    if (D == ".zero") {
      if (!Need(1))
        return false;
      int64_t N;
      if (!parseInt(Toks[1].Text, N, Err))
        return false;
      CurData->Bytes.insert(CurData->Bytes.end(), static_cast<size_t>(N), 0);
      return true;
    }
    if (D == ".addr") {
      if (!Need(1))
        return false;
      int64_t Addend = 0;
      if (Toks.size() > 2 && !parseInt(Toks[2].Text, Addend, Err))
        return false;
      // Pad to word alignment, then record the patch site.
      while (CurData->Bytes.size() % 4 != 0)
        CurData->Bytes.push_back(0);
      CurData->SymWords.push_back(
          {static_cast<uint32_t>(CurData->Bytes.size()), Toks[1].Text,
           static_cast<int32_t>(Addend)});
      CurData->Bytes.insert(CurData->Bytes.end(), 4, 0);
      return true;
    }
    // .word / .byte value lists.
    for (size_t I = 1; I != Toks.size(); ++I) {
      int64_t V;
      if (!parseInt(Toks[I].Text, V, Err))
        return false;
      if (D == ".byte") {
        CurData->Bytes.push_back(static_cast<uint8_t>(V));
      } else {
        uint32_t W = static_cast<uint32_t>(V);
        CurData->Bytes.push_back(static_cast<uint8_t>(W));
        CurData->Bytes.push_back(static_cast<uint8_t>(W >> 8));
        CurData->Bytes.push_back(static_cast<uint8_t>(W >> 16));
        CurData->Bytes.push_back(static_cast<uint8_t>(W >> 24));
      }
    }
    return true;
  }
  if (D == ".switch") {
    if (!CurFunc || !curBlock()) {
      Err = ".switch outside a function";
      return false;
    }
    if (!Need(4))
      return false;
    unsigned IdxReg, ScratchReg;
    if (!parseReg(Toks[1], IdxReg, Err) || !parseReg(Toks[2], ScratchReg, Err))
      return false;
    const std::string &TableSym = Toks[3].Text;
    std::vector<std::string> Targets;
    for (size_t I = 4; I != Toks.size(); ++I)
      Targets.push_back(Toks[I].Text);
    if (Targets.empty()) {
      Err = ".switch needs at least one target";
      return false;
    }

    // Create the table object.
    DataObject Tab;
    Tab.Name = TableSym;
    Tab.Bytes.assign(Targets.size() * 4, 0);
    for (uint32_t I = 0; I != Targets.size(); ++I)
      Tab.SymWords.push_back({I * 4, Targets[I], 0});
    P.Data.push_back(std::move(Tab));

    // Emit the 6-instruction idiom (see FunctionBuilder::switchJump).
    BasicBlock *B = curBlock();
    auto RRI = [&](Opcode Op, unsigned Rc, unsigned Ra, int32_t Lit) {
      Inst I;
      I.Op = Op;
      I.Rc = static_cast<uint8_t>(Rc);
      I.Ra = static_cast<uint8_t>(Ra);
      I.Imm = Lit;
      B->Insts.push_back(I);
    };
    RRI(Opcode::Slli, IdxReg, IdxReg, 2);
    Inst Hi;
    Hi.Op = Opcode::Ldah;
    Hi.Ra = static_cast<uint8_t>(ScratchReg);
    Hi.Rb = RegZero;
    Hi.Symbol = TableSym;
    Hi.Reloc = RelocKind::Hi16;
    B->Insts.push_back(Hi);
    Inst Lo = Hi;
    Lo.Op = Opcode::Lda;
    Lo.Rb = static_cast<uint8_t>(ScratchReg);
    Lo.Reloc = RelocKind::Lo16;
    B->Insts.push_back(Lo);
    Inst Add;
    Add.Op = Opcode::Add;
    Add.Rc = static_cast<uint8_t>(ScratchReg);
    Add.Ra = static_cast<uint8_t>(ScratchReg);
    Add.Rb = static_cast<uint8_t>(IdxReg);
    B->Insts.push_back(Add);
    Inst Ld;
    Ld.Op = Opcode::Ldw;
    Ld.Ra = static_cast<uint8_t>(ScratchReg);
    Ld.Rb = static_cast<uint8_t>(ScratchReg);
    B->Insts.push_back(Ld);
    Inst J;
    J.Op = Opcode::Jmp;
    J.Ra = RegZero;
    J.Rb = static_cast<uint8_t>(ScratchReg);
    B->Insts.push_back(J);

    SwitchInfo SI;
    SI.TableSymbol = TableSym;
    SI.Targets = std::move(Targets);
    SI.IndexReg = static_cast<uint8_t>(IdxReg);
    SI.ScratchReg = static_cast<uint8_t>(ScratchReg);
    SI.SeqLen = 6;
    B->Switch = SI;
    return true;
  }
  Err = "unknown directive '" + D + "'";
  return false;
}

bool Assembler::handleInst(const std::vector<Token> &Toks, std::string &Err) {
  if (!CurFunc) {
    Err = "instruction outside a function";
    return false;
  }
  BasicBlock *B = curBlock();
  const std::string &Mnemonic = Toks[0].Text;

  // Pseudo-instructions.
  if (Mnemonic == "la" || Mnemonic == "li") {
    if (Toks.size() < 3) {
      Err = Mnemonic + " needs two operands";
      return false;
    }
    unsigned Rd;
    if (!parseReg(Toks[1], Rd, Err))
      return false;
    if (Mnemonic == "li") {
      int64_t V;
      if (!parseInt(Toks[2].Text, V, Err))
        return false;
      int32_t Value = static_cast<int32_t>(V);
      if (Value >= -32768 && Value <= 32767) {
        Inst I;
        I.Op = Opcode::Lda;
        I.Ra = static_cast<uint8_t>(Rd);
        I.Rb = RegZero;
        I.Imm = Value;
        B->Insts.push_back(I);
      } else {
        int32_t Lo = static_cast<int16_t>(Value & 0xFFFF);
        Inst I;
        I.Op = Opcode::Ldah;
        I.Ra = static_cast<uint8_t>(Rd);
        I.Rb = RegZero;
        I.Imm = static_cast<int32_t>(
            (static_cast<int64_t>(Value) - Lo) >> 16);
        B->Insts.push_back(I);
        if (Lo != 0) {
          I.Op = Opcode::Lda;
          I.Rb = static_cast<uint8_t>(Rd);
          I.Imm = Lo;
          B->Insts.push_back(I);
        }
      }
      return true;
    }
    // la rd, symbol [addend]
    int64_t Addend = 0;
    if (Toks.size() > 3 && !parseInt(Toks[3].Text, Addend, Err))
      return false;
    Inst Hi;
    Hi.Op = Opcode::Ldah;
    Hi.Ra = static_cast<uint8_t>(Rd);
    Hi.Rb = RegZero;
    Hi.Symbol = Toks[2].Text;
    Hi.Imm = static_cast<int32_t>(Addend);
    Hi.Reloc = RelocKind::Hi16;
    B->Insts.push_back(Hi);
    Inst Lo = Hi;
    Lo.Op = Opcode::Lda;
    Lo.Rb = static_cast<uint8_t>(Rd);
    Lo.Reloc = RelocKind::Lo16;
    B->Insts.push_back(Lo);
    return true;
  }

  Opcode Op = opcodeByName(Mnemonic);
  if (Op == Opcode::Sentinel) {
    Err = "unknown mnemonic '" + Mnemonic + "'";
    return false;
  }
  if (!opcodeInfo(Op).IsLegal) {
    Err = "mnemonic '" + Mnemonic + "' is not assemblable";
    return false;
  }

  Inst I;
  I.Op = Op;
  switch (formatOf(Op)) {
  case Format::Mem: {
    // op ra, disp(rb)  — or with a symbol: handled only via `la`.
    if (Toks.size() < 3) {
      Err = "memory instruction needs operands";
      return false;
    }
    unsigned Ra;
    if (!parseReg(Toks[1], Ra, Err))
      return false;
    I.Ra = static_cast<uint8_t>(Ra);
    int64_t Disp;
    if (!parseInt(Toks[2].Text, Disp, Err))
      return false;
    I.Imm = static_cast<int32_t>(Disp);
    unsigned Rb = RegZero;
    if (Toks.size() > 3) {
      if (!parseReg(Toks[3], Rb, Err))
        return false;
    }
    I.Rb = static_cast<uint8_t>(Rb);
    break;
  }
  case Format::Branch: {
    if (Op == Opcode::Br && Toks.size() == 2) {
      I.Ra = RegZero;
      I.Symbol = Toks[1].Text;
      I.Reloc = RelocKind::BranchDisp;
      break;
    }
    if (Toks.size() < 3) {
      Err = "branch needs a register and a target";
      return false;
    }
    unsigned Ra;
    if (!parseReg(Toks[1], Ra, Err))
      return false;
    I.Ra = static_cast<uint8_t>(Ra);
    I.Symbol = Toks[2].Text;
    I.Reloc = RelocKind::BranchDisp;
    break;
  }
  case Format::Jump: {
    if (Op == Opcode::Ret && Toks.size() == 1) {
      I.Ra = RegZero;
      I.Rb = RegRA;
      break;
    }
    unsigned Pos = 1;
    unsigned Ra = RegZero;
    if (Toks.size() > 2) {
      if (!parseReg(Toks[Pos++], Ra, Err))
        return false;
    }
    I.Ra = static_cast<uint8_t>(Ra);
    if (Pos >= Toks.size()) {
      Err = "jump needs a target register";
      return false;
    }
    unsigned Rb;
    if (!parseReg(Toks[Pos], Rb, Err))
      return false;
    I.Rb = static_cast<uint8_t>(Rb);
    break;
  }
  case Format::OpRRR: {
    if (Toks.size() < 4) {
      Err = "operate instruction needs three registers";
      return false;
    }
    unsigned Rc, Ra, Rb;
    if (!parseReg(Toks[1], Rc, Err) || !parseReg(Toks[2], Ra, Err) ||
        !parseReg(Toks[3], Rb, Err))
      return false;
    I.Rc = static_cast<uint8_t>(Rc);
    I.Ra = static_cast<uint8_t>(Ra);
    I.Rb = static_cast<uint8_t>(Rb);
    break;
  }
  case Format::OpRRI: {
    if (Toks.size() < 4) {
      Err = "operate-immediate instruction needs rc, ra, lit";
      return false;
    }
    unsigned Rc, Ra;
    if (!parseReg(Toks[1], Rc, Err) || !parseReg(Toks[2], Ra, Err))
      return false;
    int64_t Lit;
    if (!parseInt(Toks[3].Text, Lit, Err))
      return false;
    if (Lit < 0 || Lit > 255) {
      Err = "8-bit literal out of range";
      return false;
    }
    I.Rc = static_cast<uint8_t>(Rc);
    I.Ra = static_cast<uint8_t>(Ra);
    I.Imm = static_cast<int32_t>(Lit);
    break;
  }
  case Format::Sys: {
    if (Toks.size() < 2) {
      Err = "sys needs a function id";
      return false;
    }
    const std::string &F = Toks[1].Text;
    static const struct {
      const char *Name;
      SysFunc Func;
    } Names[] = {
        {"halt", SysFunc::Halt},       {"putchar", SysFunc::PutChar},
        {"getchar", SysFunc::GetChar}, {"putint", SysFunc::PutInt},
        {"putword", SysFunc::PutWord}, {"getword", SysFunc::GetWord},
        {"setjmp", SysFunc::Setjmp},   {"longjmp", SysFunc::Longjmp},
    };
    bool Found = false;
    for (const auto &N : Names)
      if (F == N.Name) {
        I.Imm = static_cast<int32_t>(N.Func);
        Found = true;
        break;
      }
    if (!Found) {
      int64_t V;
      if (!parseInt(F, V, Err))
        return false;
      I.Imm = static_cast<int32_t>(V);
    }
    break;
  }
  }
  B->Insts.push_back(std::move(I));
  return true;
}

bool Assembler::handleLine(const std::vector<Token> &Toks, std::string &Err) {
  if (Toks.empty())
    return true;
  const std::string &First = Toks[0].Text;
  if (!First.empty() && First[0] == '.')
    return handleDirective(Toks, Err);
  if (First.size() > 1 && First.back() == ':') {
    if (!CurFunc) {
      Err = "label outside a function";
      return false;
    }
    BasicBlock B;
    B.Label = First.substr(0, First.size() - 1);
    CurFunc->Blocks.push_back(std::move(B));
    // Allow an instruction on the same line after the label.
    if (Toks.size() > 1)
      return handleInst({Toks.begin() + 1, Toks.end()}, Err);
    return true;
  }
  return handleInst(Toks, Err);
}

ErrorOr<Program> Assembler::run(const std::string &Source) {
  std::istringstream Stream(Source);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    std::vector<Token> Toks;
    std::string Err;
    if (!tokenize(Line, Toks, Err) || !handleLine(Toks, Err))
      return ErrorOr<Program>::failure("line " + std::to_string(LineNo) +
                                       ": " + Err);
  }
  std::string VerifyErr = P.verify();
  if (!VerifyErr.empty())
    return ErrorOr<Program>::failure("verification failed: " + VerifyErr);
  return std::move(P);
}

ErrorOr<Program> vea::assembleProgram(const std::string &Source) {
  Assembler A;
  return A.run(Source);
}
