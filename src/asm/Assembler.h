//===- asm/Assembler.h - VEA-32 textual assembler --------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass textual assembler producing the symbolic Program IR. Used by
/// the `squash_tool` example so that hand-written .s files can be compacted,
/// profiled, and squashed like builder-constructed workloads.
///
/// Syntax (line oriented; ';' or '#' starts a comment):
///
///   .program NAME
///   .entry FUNC
///   .func NAME            ; begins a function; its entry block is NAME
///   LABEL:                ; begins a new basic block within the function
///   ldw r1, 8(r2)         ; memory:  op ra, disp(rb)
///   lda r1, -4(r30)
///   add r1, r2, r3        ; operate: op rc, ra, rb
///   addi r1, r2, 200      ; operate: op rc, ra, lit8
///   beq r1, LABEL         ; branch:  op ra, label
///   br LABEL              ; unconditional (ra = r31)
///   bsr r26, FUNC         ; call
///   jmp (r2) / jsr r26, (r2) / ret
///   sys halt              ; or a numeric syscall id
///   la r1, SYMBOL         ; pseudo: ldah/lda pair
///   li r1, 123456         ; pseudo: materialize constant
///   .switch rIDX, rSCRATCH, TABLE, L0, L1, ...   ; table-jump idiom
///   .data NAME [ALIGN]    ; begins a data object
///   .word 1, 2, 3
///   .byte 65, 66
///   .ascii "text"
///   .addr LABEL [+ADDEND]
///   .zero N
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_ASM_ASSEMBLER_H
#define SQUASH_ASM_ASSEMBLER_H

#include "ir/IR.h"
#include "support/Error.h"

#include <string>

namespace vea {

/// Assembles \p Source into a verified Program. On failure the ErrorOr
/// carries "line N: message".
ErrorOr<Program> assembleProgram(const std::string &Source);

} // namespace vea

#endif // SQUASH_ASM_ASSEMBLER_H
