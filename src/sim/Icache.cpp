//===- sim/Icache.cpp - Simulated instruction cache -----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "sim/Icache.h"

#include <cstddef>

namespace vea {

namespace {

uint32_t roundUpPow2(uint32_t V, uint32_t Min) {
  if (V < Min)
    V = Min;
  uint32_t P = Min;
  while (P < V)
    P <<= 1;
  return P;
}

} // namespace

IcacheModel::IcacheModel(const IcacheConfig &C) : Cfg(C) {
  Cfg.LineBytes = roundUpPow2(Cfg.LineBytes, 4);
  Cfg.Sets = roundUpPow2(Cfg.Sets, 1);
  if (Cfg.Ways == 0)
    Cfg.Ways = 1;
  LineShift = 0;
  while ((1u << LineShift) < Cfg.LineBytes)
    ++LineShift;
  Lines.assign(static_cast<size_t>(Cfg.Sets) * Cfg.Ways, Line());
}

uint64_t IcacheModel::access(uint32_t Addr) {
  ++Stats.Fetches;
  const uint64_t LineAddr = lineOf(Addr);
  Line *Set = setBase(LineAddr);
  ++Tick;
  for (uint32_t W = 0; W != Cfg.Ways; ++W) {
    Line &L = Set[W];
    if (L.Valid && L.Tag == LineAddr) {
      L.LastUse = Tick;
      return 0;
    }
  }
  // Miss: fill an invalid way if one exists, else evict the LRU way.
  Line *Victim = Set;
  for (uint32_t W = 0; W != Cfg.Ways && Victim->Valid; ++W)
    if (!Set[W].Valid || Set[W].LastUse < Victim->LastUse)
      Victim = &Set[W];
  Victim->Valid = true;
  Victim->Tag = LineAddr;
  Victim->LastUse = Tick;
  ++Stats.Misses;
  Stats.MissCycles += Cfg.MissCycles;
  return Cfg.MissCycles;
}

void IcacheModel::flushRange(uint32_t Addr, uint32_t Bytes) {
  ++Stats.RangeFlushes;
  if (Bytes == 0)
    return;
  const uint64_t First = lineOf(Addr);
  const uint64_t Last = lineOf(Addr + (Bytes - 1));
  for (uint64_t LineAddr = First; LineAddr <= Last; ++LineAddr) {
    Line *Set = setBase(LineAddr);
    for (uint32_t W = 0; W != Cfg.Ways; ++W) {
      Line &L = Set[W];
      if (L.Valid && L.Tag == LineAddr) {
        L.Valid = false;
        ++Stats.LinesFlushed;
      }
    }
  }
}

void IcacheModel::flushAll() {
  ++Stats.RangeFlushes;
  for (Line &L : Lines) {
    if (L.Valid)
      ++Stats.LinesFlushed;
    L.Valid = false;
  }
}

} // namespace vea
