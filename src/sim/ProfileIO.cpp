//===- sim/ProfileIO.cpp - Profile persistence ----------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "sim/ProfileIO.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vea;

static const char *const ProfileMagic = "squash-profile";
static const char *const ProfileVersion = "v1";

std::string vea::serializeProfile(const Profile &Prof) {
  std::string Out;
  Out += ProfileMagic;
  Out += ' ';
  Out += ProfileVersion;
  Out += '\n';
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "blocks %zu\n", Prof.BlockCounts.size());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "total %llu\n",
                static_cast<unsigned long long>(Prof.TotalInstructions));
  Out += Buf;
  for (size_t I = 0; I != Prof.BlockCounts.size(); ++I) {
    if (!Prof.BlockCounts[I])
      continue;
    std::snprintf(Buf, sizeof(Buf), "%zu %llu\n", I,
                  static_cast<unsigned long long>(Prof.BlockCounts[I]));
    Out += Buf;
  }
  return Out;
}

static Status parseError(const std::string &Detail) {
  return Status::error(StatusCode::InvalidArgument,
                       "parseProfile: " + Detail);
}

/// Parses a full line as an unsigned 64-bit decimal; rejects trailing junk.
static bool parseU64(const std::string &Tok, uint64_t &Value) {
  if (Tok.empty())
    return false;
  Value = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false; // overflow
    Value = Value * 10 + Digit;
  }
  return true;
}

Expected<Profile> vea::parseProfile(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line))
    return parseError("empty input");
  if (Line != std::string(ProfileMagic) + " " + ProfileVersion)
    return parseError("bad header: '" + Line + "'");

  auto expectField = [&](const char *Key, uint64_t &Value) -> Status {
    if (!std::getline(In, Line))
      return parseError(std::string("missing '") + Key + "' line");
    std::istringstream LS(Line);
    std::string K, V, Extra;
    if (!(LS >> K >> V) || K != Key || (LS >> Extra))
      return parseError(std::string("malformed '") + Key + "' line: '" +
                        Line + "'");
    if (!parseU64(V, Value))
      return parseError(std::string("bad ") + Key + " value: '" + V + "'");
    return Status::success();
  };

  uint64_t NumBlocks = 0, Total = 0;
  if (Status St = expectField("blocks", NumBlocks); !St.ok())
    return St;
  if (Status St = expectField("total", Total); !St.ok())
    return St;
  if (NumBlocks > (1u << 28))
    return parseError("implausible block count");

  Profile Prof;
  Prof.BlockCounts.assign(static_cast<size_t>(NumBlocks), 0);
  Prof.TotalInstructions = Total;

  std::vector<uint8_t> Seen(static_cast<size_t>(NumBlocks), 0);
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string IdTok, CountTok, Extra;
    if (!(LS >> IdTok >> CountTok) || (LS >> Extra))
      return parseError("malformed record: '" + Line + "'");
    uint64_t Id = 0, Count = 0;
    if (!parseU64(IdTok, Id) || !parseU64(CountTok, Count))
      return parseError("malformed record: '" + Line + "'");
    if (Id >= NumBlocks)
      return parseError("block id out of range: '" + Line + "'");
    if (Seen[static_cast<size_t>(Id)])
      return parseError("duplicate block id: '" + Line + "'");
    Seen[static_cast<size_t>(Id)] = 1;
    Prof.BlockCounts[static_cast<size_t>(Id)] = Count;
  }
  return Prof;
}

Status vea::saveProfileFile(const Profile &Prof, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error(StatusCode::ResourceExhausted,
                         "saveProfileFile: cannot open '" + Path + "'");
  std::string Text = serializeProfile(Prof);
  Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  Out.flush();
  if (!Out)
    return Status::error(StatusCode::ResourceExhausted,
                         "saveProfileFile: write failed for '" + Path + "'");
  return Status::success();
}

Expected<Profile> vea::loadProfileFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error(StatusCode::ResourceExhausted,
                         "loadProfileFile: cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return Status::error(StatusCode::ResourceExhausted,
                         "loadProfileFile: read failed for '" + Path + "'");
  return parseProfile(Buf.str());
}

Expected<Profile> vea::mergeProfiles(const std::vector<Profile> &Profiles) {
  if (Profiles.empty())
    return Status::error(StatusCode::InvalidArgument,
                         "mergeProfiles: no profiles");
  Profile Merged;
  Merged.BlockCounts.assign(Profiles.front().BlockCounts.size(), 0);
  for (const Profile &P : Profiles) {
    if (P.BlockCounts.size() != Merged.BlockCounts.size())
      return Status::error(
          StatusCode::InvalidArgument,
          "mergeProfiles: block count mismatch (" +
              std::to_string(P.BlockCounts.size()) + " vs " +
              std::to_string(Merged.BlockCounts.size()) + ")");
    for (size_t I = 0; I != P.BlockCounts.size(); ++I) {
      if (P.BlockCounts[I] > UINT64_MAX - Merged.BlockCounts[I])
        return Status::error(StatusCode::InvalidArgument,
                             "mergeProfiles: count overflow at block " +
                                 std::to_string(I));
      Merged.BlockCounts[I] += P.BlockCounts[I];
    }
    if (P.TotalInstructions > UINT64_MAX - Merged.TotalInstructions)
      return Status::error(StatusCode::InvalidArgument,
                           "mergeProfiles: total instruction count overflow");
    Merged.TotalInstructions += P.TotalInstructions;
  }
  return Merged;
}

Expected<Profile> vea::scaleProfile(const Profile &Prof, double Weight) {
  if (!std::isfinite(Weight) || Weight < 0.0)
    return Status::error(StatusCode::InvalidArgument,
                         "scaleProfile: weight must be finite and "
                         "non-negative (got " +
                             std::to_string(Weight) + ")");
  // llround saturates into UB past int64; stay well inside it.
  const double Limit = 9.0e18;
  auto Scale = [&](uint64_t Count, uint64_t &Out) -> bool {
    double S = static_cast<double>(Count) * Weight;
    if (S > Limit)
      return false;
    Out = static_cast<uint64_t>(std::llround(S));
    return true;
  };
  Profile Scaled;
  Scaled.BlockCounts.assign(Prof.BlockCounts.size(), 0);
  for (size_t I = 0; I != Prof.BlockCounts.size(); ++I)
    if (!Scale(Prof.BlockCounts[I], Scaled.BlockCounts[I]))
      return Status::error(StatusCode::InvalidArgument,
                           "scaleProfile: scaled count overflows at block " +
                               std::to_string(I));
  if (!Scale(Prof.TotalInstructions, Scaled.TotalInstructions))
    return Status::error(StatusCode::InvalidArgument,
                         "scaleProfile: scaled instruction total overflows");
  return Scaled;
}
