//===- sim/Machine.cpp - VEA-32 interpreter -------------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "support/Span.h"

#include <cstdio>

using namespace vea;

TrapHandler::~TrapHandler() = default;

Machine::Machine(const Image &Img) : Machine(Img, Config()) {}

Machine::Machine(const Image &Img, Config Cfg)
    : Mem(Cfg.MemBytes, 0), MaxInsts(Cfg.MaxInstructions) {
  if (Img.limit() > Cfg.MemBytes || Img.Base > Cfg.MemBytes) {
    // Construction cannot fail loudly in a library; arm the fault so run()
    // reports it immediately instead of executing garbage.
    Faulted = true;
    FaultMessage = "machine: image does not fit in memory";
    return;
  }
  std::copy(Img.Bytes.begin(), Img.Bytes.end(), Mem.begin() + Img.Base);
  Base = Img.Base;
  PC = Img.EntryPC;
  Regs.fill(0);
  Regs[RegSP] = Cfg.MemBytes - 16; // A little headroom at the very top.

  if (Cfg.Icache.Enabled)
    Icache = std::make_unique<IcacheModel>(Cfg.Icache);

  if (Cfg.CollectBlockProfile) {
    ProfileOn = true;
    CodeBase = Img.Base;
    CodeLimit = Img.Base + Img.CodeBytes;
    BlockOfWord.assign(Img.CodeBytes / WordBytes, -1);
    for (size_t Id = 0; Id != Img.Blocks.size(); ++Id) {
      const BlockLayout &BL = Img.Blocks[Id];
      if (BL.SizeWords != 0)
        BlockOfWord[(BL.Addr - CodeBase) / WordBytes] =
            static_cast<int32_t>(Id);
    }
    BlockCounts.assign(Img.Blocks.size(), 0);
  }
}

void Machine::setInput(std::vector<uint8_t> Input) {
  In = std::move(Input);
  InPos = 0;
}

void Machine::registerTrapRange(uint32_t Begin, uint32_t End,
                                TrapHandler *Handler) {
  TrapBegin = Begin;
  TrapEnd = End;
  Trap = Handler;
}

void Machine::fault(const std::string &Message) {
  if (Faulted)
    return;
  Faulted = true;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), " (pc=0x%x)", PC);
  FaultMessage = Message + Buf;
  if (FlightRecorder::armed())
    FlightRecorder::instance().noteFault("machine", FaultMessage);
}

bool Machine::loadWord(uint32_t Addr, uint32_t &Value) {
  if (Addr < Base || Addr + 4 > Mem.size()) {
    fault("out-of-bounds word load at 0x" + std::to_string(Addr));
    return false;
  }
  if (Addr % 4 != 0) {
    fault("misaligned word load");
    return false;
  }
  Value = static_cast<uint32_t>(Mem[Addr]) |
          (static_cast<uint32_t>(Mem[Addr + 1]) << 8) |
          (static_cast<uint32_t>(Mem[Addr + 2]) << 16) |
          (static_cast<uint32_t>(Mem[Addr + 3]) << 24);
  return true;
}

bool Machine::storeWord(uint32_t Addr, uint32_t Value) {
  if (Addr < Base || Addr + 4 > Mem.size()) {
    fault("out-of-bounds word store");
    return false;
  }
  if (Addr % 4 != 0) {
    fault("misaligned word store");
    return false;
  }
  Mem[Addr] = static_cast<uint8_t>(Value);
  Mem[Addr + 1] = static_cast<uint8_t>(Value >> 8);
  Mem[Addr + 2] = static_cast<uint8_t>(Value >> 16);
  Mem[Addr + 3] = static_cast<uint8_t>(Value >> 24);
  return true;
}

bool Machine::loadByte(uint32_t Addr, uint8_t &Value) {
  if (Addr < Base || Addr >= Mem.size()) {
    fault("out-of-bounds byte load");
    return false;
  }
  Value = Mem[Addr];
  return true;
}

bool Machine::storeByte(uint32_t Addr, uint8_t Value) {
  if (Addr < Base || Addr >= Mem.size()) {
    fault("out-of-bounds byte store");
    return false;
  }
  Mem[Addr] = Value;
  return true;
}

void Machine::execSys(uint32_t Func) {
  switch (static_cast<SysFunc>(Func)) {
  case SysFunc::Halt:
    Halted = true;
    ExitCode = reg(16);
    return;
  case SysFunc::PutChar:
    Out.push_back(static_cast<uint8_t>(reg(16)));
    return;
  case SysFunc::GetChar:
    setReg(0, InPos < In.size() ? In[InPos++] : 0xFFFFFFFFu);
    return;
  case SysFunc::PutInt: {
    char Buf[16];
    int Len = std::snprintf(Buf, sizeof(Buf), "%d",
                            static_cast<int32_t>(reg(16)));
    Out.insert(Out.end(), Buf, Buf + Len);
    return;
  }
  case SysFunc::PutWord: {
    uint32_t V = reg(16);
    Out.push_back(static_cast<uint8_t>(V));
    Out.push_back(static_cast<uint8_t>(V >> 8));
    Out.push_back(static_cast<uint8_t>(V >> 16));
    Out.push_back(static_cast<uint8_t>(V >> 24));
    return;
  }
  case SysFunc::GetWord:
    if (InPos + 4 <= In.size()) {
      uint32_t V = static_cast<uint32_t>(In[InPos]) |
                   (static_cast<uint32_t>(In[InPos + 1]) << 8) |
                   (static_cast<uint32_t>(In[InPos + 2]) << 16) |
                   (static_cast<uint32_t>(In[InPos + 3]) << 24);
      InPos += 4;
      setReg(0, V);
      setReg(1, 1);
    } else {
      setReg(0, 0);
      setReg(1, 0);
    }
    return;
  case SysFunc::Setjmp: {
    uint32_t Buf = reg(16);
    for (unsigned R = 0; R != NumRegs; ++R)
      if (!storeWord(Buf + R * 4, reg(R)))
        return;
    if (!storeWord(Buf + NumRegs * 4, PC + 4))
      return;
    setReg(0, 0);
    return;
  }
  case SysFunc::Longjmp: {
    uint32_t Buf = reg(16);
    uint32_t Val = reg(17);
    for (unsigned R = 0; R != NumRegs; ++R) {
      uint32_t V;
      if (!loadWord(Buf + R * 4, V))
        return;
      setReg(R, V);
    }
    uint32_t Resume;
    if (!loadWord(Buf + NumRegs * 4, Resume))
      return;
    setReg(0, Val ? Val : 1);
    PC = Resume;
    PCOverridden = true;
    return;
  }
  }
  fault("unknown syscall " + std::to_string(Func));
}

bool Machine::step() {
  // Trap dispatch happens on instruction fetch, modelling control arriving
  // at the decompressor's entry points.
  if (Trap && PC >= TrapBegin && PC < TrapEnd)
    return Trap->handleTrap(*this, PC) && !Faulted && !Halted;

  if (PC % 4 != 0) {
    fault("misaligned pc");
    return false;
  }
  if (PC < Base || PC + 4 > Mem.size()) {
    fault("pc out of bounds");
    return false;
  }

  // The fetch goes through the simulated I-cache when one is configured;
  // a miss charges its penalty through the same cycle account the runtime
  // services use, so the conservation ledger can attribute it exactly.
  if (Icache)
    Cycles += Icache->access(PC);

  uint32_t Word;
  if (!loadWord(PC, Word))
    return false;
  if (!isLegalWord(Word)) {
    fault("illegal instruction word " + std::to_string(Word));
    return false;
  }

  if (ProfileOn && PC >= CodeBase && PC < CodeLimit) {
    int32_t Block = BlockOfWord[(PC - CodeBase) / WordBytes];
    if (Block >= 0)
      ++BlockCounts[Block];
  }

  MInst I = decode(Word);
  ++Insts;
  ++Cycles;

  uint32_t NextPC = PC + 4;
  auto BranchTarget = [&]() {
    return static_cast<uint32_t>(static_cast<int64_t>(PC) + 4 +
                                 4 * static_cast<int64_t>(I.disp21()));
  };

  switch (I.Op) {
  case Opcode::Ldw: {
    uint32_t V;
    if (!loadWord(reg(I.rb()) + I.disp16(), V))
      return false;
    setReg(I.ra(), V);
    break;
  }
  case Opcode::Ldb: {
    uint8_t V;
    if (!loadByte(reg(I.rb()) + I.disp16(), V))
      return false;
    setReg(I.ra(), V);
    break;
  }
  case Opcode::Stw:
    if (!storeWord(reg(I.rb()) + I.disp16(), reg(I.ra())))
      return false;
    break;
  case Opcode::Stb:
    if (!storeByte(reg(I.rb()) + I.disp16(),
                   static_cast<uint8_t>(reg(I.ra()))))
      return false;
    break;
  case Opcode::Lda:
    setReg(I.ra(), reg(I.rb()) + static_cast<uint32_t>(I.disp16()));
    break;
  case Opcode::Ldah:
    setReg(I.ra(),
           reg(I.rb()) + (static_cast<uint32_t>(I.disp16()) << 16));
    break;

  case Opcode::Br:
  case Opcode::Bsr:
    setReg(I.ra(), PC + 4);
    NextPC = BranchTarget();
    break;
  case Opcode::Beq:
    if (reg(I.ra()) == 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Bne:
    if (reg(I.ra()) != 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Blt:
    if (static_cast<int32_t>(reg(I.ra())) < 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Ble:
    if (static_cast<int32_t>(reg(I.ra())) <= 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Bgt:
    if (static_cast<int32_t>(reg(I.ra())) > 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Bge:
    if (static_cast<int32_t>(reg(I.ra())) >= 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Blbc:
    if ((reg(I.ra()) & 1) == 0)
      NextPC = BranchTarget();
    break;
  case Opcode::Blbs:
    if ((reg(I.ra()) & 1) == 1)
      NextPC = BranchTarget();
    break;

  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret: {
    uint32_t Target = reg(I.rb()) & ~3u;
    setReg(I.ra(), PC + 4);
    NextPC = Target;
    break;
  }

#define RRR_CASE(OPC, EXPR)                                                   \
  case Opcode::OPC: {                                                         \
    uint32_t A = reg(I.ra()), B = reg(I.rb());                                \
    (void)A;                                                                  \
    (void)B;                                                                  \
    setReg(I.rc(), (EXPR));                                                   \
    break;                                                                    \
  }
    RRR_CASE(Add, A + B)
    RRR_CASE(Sub, A - B)
    RRR_CASE(Mul, A *B)
    RRR_CASE(Umulh, static_cast<uint32_t>(
                        (static_cast<uint64_t>(A) * B) >> 32))
    RRR_CASE(And, A &B)
    RRR_CASE(Or, A | B)
    RRR_CASE(Xor, A ^ B)
    RRR_CASE(Bic, A & ~B)
    RRR_CASE(Sll, A << (B & 31))
    RRR_CASE(Srl, A >> (B & 31))
    RRR_CASE(Sra, static_cast<uint32_t>(static_cast<int32_t>(A) >>
                                        (B & 31)))
    RRR_CASE(Cmpeq, A == B ? 1u : 0u)
    RRR_CASE(Cmplt,
             static_cast<int32_t>(A) < static_cast<int32_t>(B) ? 1u : 0u)
    RRR_CASE(Cmple,
             static_cast<int32_t>(A) <= static_cast<int32_t>(B) ? 1u : 0u)
    RRR_CASE(Cmpult, A < B ? 1u : 0u)
    RRR_CASE(Cmpule, A <= B ? 1u : 0u)
#undef RRR_CASE

  case Opcode::Udiv:
  case Opcode::Urem: {
    uint32_t A = reg(I.ra()), B = reg(I.rb());
    if (B == 0) {
      fault("division by zero");
      return false;
    }
    setReg(I.rc(), I.Op == Opcode::Udiv ? A / B : A % B);
    break;
  }

#define RRI_CASE(OPC, EXPR)                                                   \
  case Opcode::OPC: {                                                         \
    uint32_t A = reg(I.ra()), B = I.lit8();                                   \
    (void)A;                                                                  \
    (void)B;                                                                  \
    setReg(I.rc(), (EXPR));                                                   \
    break;                                                                    \
  }
    RRI_CASE(Addi, A + B)
    RRI_CASE(Subi, A - B)
    RRI_CASE(Muli, A *B)
    RRI_CASE(Andi, A &B)
    RRI_CASE(Ori, A | B)
    RRI_CASE(Xori, A ^ B)
    RRI_CASE(Slli, A << (B & 31))
    RRI_CASE(Srli, A >> (B & 31))
    RRI_CASE(Srai, static_cast<uint32_t>(static_cast<int32_t>(A) >>
                                         (B & 31)))
    RRI_CASE(Cmpeqi, A == B ? 1u : 0u)
    RRI_CASE(Cmplti, static_cast<int32_t>(A) <
                             static_cast<int32_t>(B)
                         ? 1u
                         : 0u)
    RRI_CASE(Cmplei, static_cast<int32_t>(A) <=
                             static_cast<int32_t>(B)
                         ? 1u
                         : 0u)
    RRI_CASE(Cmpulti, A < B ? 1u : 0u)
    RRI_CASE(Cmpulei, A <= B ? 1u : 0u)
#undef RRI_CASE

  case Opcode::Sys:
    execSys(I.sfunc());
    if (Faulted || Halted)
      return false;
    break;

  case Opcode::Sentinel:
  case Opcode::Bsrx:
  case Opcode::NumOpcodes:
    fault("illegal instruction");
    return false;
  }

  if (Faulted)
    return false;
  if (PCOverridden)
    PCOverridden = false; // Longjmp already set the PC.
  else
    PC = NextPC;
  return true;
}

RunResult Machine::run() {
  RunResult R;
  auto FillCounters = [&] {
    R.Instructions = Insts;
    R.Cycles = Cycles;
    if (Icache) {
      R.IcacheFetches = Icache->stats().Fetches;
      R.IcacheMisses = Icache->stats().Misses;
      R.IcacheMissCycles = Icache->stats().MissCycles;
    }
  };
  while (!Halted && !Faulted) {
    if (Insts >= MaxInsts) {
      R.Status = RunStatus::InstLimit;
      FillCounters();
      return R;
    }
    if (!step())
      break;
  }
  R.Status = Halted ? RunStatus::Halted : RunStatus::Fault;
  R.ExitCode = ExitCode;
  R.FaultMessage = FaultMessage;
  FillCounters();
  return R;
}

Profile Machine::takeProfile() {
  Profile P;
  P.BlockCounts = std::move(BlockCounts);
  P.TotalInstructions = Insts;
  return P;
}

void vea::exportRunMetrics(MetricsRegistry &R, const RunResult &Run,
                           const std::string &Prefix) {
  R.setCounter(Prefix + "instructions", Run.Instructions);
  R.setCounter(Prefix + "cycles", Run.Cycles);
  R.setCounter(Prefix + "exit_code", Run.ExitCode);
  R.setCounter(Prefix + "halted", Run.Status == RunStatus::Halted ? 1 : 0);
  if (Run.IcacheFetches) {
    R.setCounter(Prefix + "icache_fetches", Run.IcacheFetches);
    R.setCounter(Prefix + "icache_misses", Run.IcacheMisses);
    R.setCounter(Prefix + "icache_miss_cycles", Run.IcacheMissCycles);
  }
}
