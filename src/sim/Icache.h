//===- sim/Icache.h - Simulated instruction cache --------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tag-only set-associative instruction cache model for the VEA-32
/// machine. The cache never holds data — only line tags — so enabling it
/// cannot change guest-visible behaviour; it only adds a per-fetch miss
/// penalty to the cycle count. This gives the cost model an honest memory
/// dimension: code layout, which a flat cycles-per-instruction model is
/// blind to, becomes visible as conflict and capacity misses.
///
/// The model is disabled by default (`IcacheConfig::Enabled == false`), in
/// which case the runtime keeps charging the flat
/// `CostModel::IcacheFlushCycles` constant on region fills and every
/// existing cycle count stays bit-stable. When enabled, the runtime instead
/// invalidates the written line range (`Machine::icacheFlushRange`) and the
/// flush cost materializes as real fetch misses, attributed to the new
/// `IcacheMiss` ledger term.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SIM_ICACHE_H
#define SQUASH_SIM_ICACHE_H

#include <cstdint>
#include <vector>

namespace vea {

/// Geometry and cost of the simulated I-cache. All counts must be powers
/// of two (the model normalizes up if not); total capacity is
/// `LineBytes * Sets * Ways`.
struct IcacheConfig {
  bool Enabled = false;
  uint32_t LineBytes = 32; ///< Bytes per line (>= 4).
  uint32_t Sets = 64;      ///< Number of sets.
  uint32_t Ways = 2;       ///< Associativity.
  uint64_t MissCycles = 20; ///< Penalty per miss, charged to the fetch.
};

/// Counters the model accumulates over a run.
struct IcacheStats {
  uint64_t Fetches = 0;
  uint64_t Misses = 0;
  uint64_t MissCycles = 0;    ///< Misses x configured penalty.
  uint64_t LinesFlushed = 0;  ///< Valid lines invalidated by flushes.
  uint64_t RangeFlushes = 0;  ///< flushRange / flushAll calls.

  double missRate() const {
    return Fetches ? static_cast<double>(Misses) / Fetches : 0.0;
  }
};

/// Tag-only set-associative cache with LRU replacement. Addresses are
/// guest-physical; the model knows nothing about the memory contents.
class IcacheModel {
public:
  explicit IcacheModel(const IcacheConfig &Cfg);

  /// Looks up the line containing \p Addr, filling it on a miss. Returns
  /// the miss penalty in cycles (0 on a hit).
  uint64_t access(uint32_t Addr);

  /// Invalidates every line overlapping [Addr, Addr + Bytes). Models the
  /// coherence cost of writing code: the next fetch from the range misses.
  void flushRange(uint32_t Addr, uint32_t Bytes);

  /// Invalidates the whole cache.
  void flushAll();

  const IcacheConfig &config() const { return Cfg; }
  const IcacheStats &stats() const { return Stats; }

private:
  struct Line {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  uint64_t lineOf(uint32_t Addr) const { return Addr >> LineShift; }
  Line *setBase(uint64_t LineAddr) {
    return &Lines[(LineAddr & (Cfg.Sets - 1)) * Cfg.Ways];
  }

  IcacheConfig Cfg;
  IcacheStats Stats;
  std::vector<Line> Lines; ///< Sets x Ways, set-major.
  uint32_t LineShift = 5;
  uint64_t Tick = 0; ///< LRU clock.
};

} // namespace vea

#endif // SQUASH_SIM_ICACHE_H
