//===- sim/ProfileIO.h - Profile persistence -------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Save/load/merge for the per-basic-block execution profiles squash
/// consumes. The paper's Figure 5 trains the compressor on one input and
/// evaluates on another; persisting profiles makes that experiment (and
/// multi-input training via merge) reproducible from the command line:
///
///   squash-profile v1
///   blocks <N>
///   total <instructions>
///   <block-id> <count>        # one line per nonzero-count block
///   ...
///
/// The format is line-oriented text, versioned by the header line so a
/// future binary or extended format can coexist with old files. Block ids
/// are Cfg block ids for the program the profile was collected on; loaders
/// validate structure, not program identity — squashProgram rejects a
/// profile whose block count does not match the program.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SIM_PROFILEIO_H
#define SQUASH_SIM_PROFILEIO_H

#include "sim/Machine.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace vea {

/// Renders \p Prof in the versioned text format above. Zero-count blocks
/// are omitted (cold code dominates real profiles; the block count line
/// preserves the vector's size).
std::string serializeProfile(const Profile &Prof);

/// Parses the text format. Fails with InvalidArgument on an unknown
/// version line, a malformed or duplicate record, a block id outside
/// [0, blocks), or a count that overflows uint64.
Expected<Profile> parseProfile(const std::string &Text);

/// Writes serializeProfile(Prof) to \p Path. Fails with ResourceExhausted
/// when the file cannot be created or written.
Status saveProfileFile(const Profile &Prof, const std::string &Path);

/// Reads and parses \p Path. Fails with ResourceExhausted when the file
/// cannot be read, or with parseProfile's errors.
Expected<Profile> loadProfileFile(const std::string &Path);

/// Merges same-program profiles by summing per-block counts and total
/// instruction counts (multi-input training). Fails with InvalidArgument
/// when \p Profiles is empty, the block universes (block counts) disagree,
/// or any summed count would overflow uint64 — a hostile or corrupted
/// profile must be rejected here with a descriptive status, never
/// propagated as garbage heat into the pipeline.
Expected<Profile> mergeProfiles(const std::vector<Profile> &Profiles);

/// Scales every block count (and the instruction total) of \p Prof by
/// \p Weight, rounding to nearest — the validated path for weighting a
/// short monitored run against a heavyweight training profile before a
/// merge. Fails with InvalidArgument when \p Weight is NaN, infinite, or
/// negative, or when a scaled count would overflow the 64-bit count space.
Expected<Profile> scaleProfile(const Profile &Prof, double Weight);

} // namespace vea

#endif // SQUASH_SIM_PROFILEIO_H
