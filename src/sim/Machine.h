//===- sim/Machine.h - VEA-32 interpreter ----------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A byte-addressed VEA-32 machine: executes an Image, provides the I/O
/// syscalls workloads use, collects the per-basic-block execution profile
/// squash consumes (the paper's "execution counts for the program's basic
/// blocks"), and accounts cycles. The squash runtime plugs in through the
/// TrapHandler interface: when the PC enters a registered address range the
/// handler (the decompressor) takes over, exactly as the trap would land in
/// the native decompressor's code on the paper's Alpha.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SIM_MACHINE_H
#define SQUASH_SIM_MACHINE_H

#include "isa/Isa.h"
#include "link/Layout.h"
#include "sim/Icache.h"
#include "support/Metrics.h"

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vea {

class Machine;

/// Hook invoked when execution reaches a registered address range. The
/// squash runtime (entry stubs' decompressor target) implements this.
class TrapHandler {
public:
  virtual ~TrapHandler();

  /// Called instead of fetching at \p PC. Must update machine state
  /// (registers, memory, PC) and return true, or call Machine::fault() and
  /// return false.
  virtual bool handleTrap(Machine &M, uint32_t PC) = 0;
};

enum class RunStatus : uint8_t {
  Halted,    ///< Program executed sys Halt.
  Fault,     ///< Illegal instruction, bad memory access, etc.
  InstLimit, ///< Instruction budget exhausted (runaway guard).
};

struct RunResult {
  RunStatus Status = RunStatus::Fault;
  uint32_t ExitCode = 0;
  std::string FaultMessage;
  uint64_t Instructions = 0; ///< Program instructions retired.
  uint64_t Cycles = 0;       ///< Instructions + charged runtime-service work.

  // Simulated I-cache counters; all zero when the model is disabled.
  uint64_t IcacheFetches = 0;
  uint64_t IcacheMisses = 0;
  uint64_t IcacheMissCycles = 0; ///< Miss penalty included in Cycles.
};

/// Registers a run's machine counters (instructions retired, cycles, exit
/// code, halt status) under \p Prefix (DESIGN.md §12).
void exportRunMetrics(MetricsRegistry &R, const RunResult &Run,
                      const std::string &Prefix = "run.");

/// The per-basic-block execution profile squash consumes.
struct Profile {
  std::vector<uint64_t> BlockCounts; ///< Indexed by Cfg block id.
  uint64_t TotalInstructions = 0;    ///< The paper's tot_instr_ct.
};

class Machine {
public:
  struct Config {
    uint32_t MemBytes = 8u << 20;
    uint64_t MaxInstructions = 2'000'000'000ull;
    bool CollectBlockProfile = false;
    /// Simulated I-cache; disabled by default so cycle counts stay
    /// bit-stable with the flat fetch model.
    IcacheConfig Icache;
  };

  explicit Machine(const Image &Img, Config Cfg);
  explicit Machine(const Image &Img);

  void setInput(std::vector<uint8_t> Input);
  const std::vector<uint8_t> &output() const { return Out; }

  /// Registers \p Handler for PCs in [Begin, End).
  void registerTrapRange(uint32_t Begin, uint32_t End, TrapHandler *Handler);

  /// Runs until halt, fault, or the instruction limit.
  RunResult run();

  /// Returns the collected block profile (requires CollectBlockProfile).
  Profile takeProfile();

  // --- State access for trap handlers and tests --------------------------
  uint32_t reg(unsigned R) const {
    return R == RegZero ? 0 : Regs[R];
  }
  void setReg(unsigned R, uint32_t Value) {
    if (R != RegZero)
      Regs[R] = Value;
  }
  uint32_t pc() const { return PC; }
  void setPC(uint32_t NewPC) { PC = NewPC; }

  /// Checked loads/stores; on failure record a fault and return false.
  bool loadWord(uint32_t Addr, uint32_t &Value);
  bool storeWord(uint32_t Addr, uint32_t Value);
  bool loadByte(uint32_t Addr, uint8_t &Value);
  bool storeByte(uint32_t Addr, uint8_t Value);

  /// Charges extra cycles (runtime-service work such as decompression).
  void addCycles(uint64_t N) { Cycles += N; }
  uint64_t cycles() const { return Cycles; }
  uint64_t instructions() const { return Insts; }

  /// True when the simulated I-cache is modelled; fetch misses then add
  /// their penalty to cycles() via the same charging discipline.
  bool icacheEnabled() const { return Icache != nullptr; }

  /// The model's counters, or nullptr when disabled.
  const IcacheStats *icacheStats() const {
    return Icache ? &Icache->stats() : nullptr;
  }

  /// Invalidates cached lines overlapping [Addr, Addr + Bytes). Runtime
  /// services call this after writing code into guest memory (region
  /// fills, stub rewrites); no-op when the model is disabled.
  void icacheFlushRange(uint32_t Addr, uint32_t Bytes) {
    if (Icache)
      Icache->flushRange(Addr, Bytes);
  }

  /// Records a fault; the run loop stops after the current step.
  void fault(const std::string &Message);
  bool faulted() const { return Faulted; }

  uint32_t memBytes() const { return static_cast<uint32_t>(Mem.size()); }

  /// Raw memory access for privileged runtime services (the decompressor
  /// reads the compressed blob directly, as native code would).
  const uint8_t *memData() const { return Mem.data(); }

private:
  bool step(); ///< Returns false when the run should stop.
  void execSys(uint32_t Func);

  std::vector<uint8_t> Mem;
  std::array<uint32_t, NumRegs> Regs = {};
  uint32_t PC = 0;
  uint32_t Base = 0; ///< Lowest mapped address (null page below faults).

  std::vector<uint8_t> In;
  size_t InPos = 0;
  std::vector<uint8_t> Out;

  uint64_t Insts = 0;
  uint64_t Cycles = 0;
  uint64_t MaxInsts;

  bool Halted = false;
  uint32_t ExitCode = 0;
  bool Faulted = false;
  bool PCOverridden = false; ///< Set by longjmp; suppresses PC += 4.
  std::string FaultMessage;

  // Trap dispatch.
  uint32_t TrapBegin = 0, TrapEnd = 0;
  TrapHandler *Trap = nullptr;

  // Simulated I-cache (null when disabled).
  std::unique_ptr<IcacheModel> Icache;

  // Profiling.
  bool ProfileOn = false;
  uint32_t CodeBase = 0, CodeLimit = 0;
  std::vector<int32_t> BlockOfWord; ///< -1 if not a block start.
  std::vector<uint64_t> BlockCounts;
};

} // namespace vea

#endif // SQUASH_SIM_MACHINE_H
