//===- ir/Builder.h - Fluent program construction API ----------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramBuilder / FunctionBuilder: the construction API the workload suite
/// (src/workloads) is written against, playing the role the C compiler plays
/// for the paper's MediaBench binaries.
///
/// Register discipline baked into the builder (and relied on by squash):
///  - r25 is the reserved stub register: generated code never touches it, so
///    entry stubs can use `bsr r25, decompressor` without a liveness
///    analysis (our substitution for the paper's "any free register will
///    do" search; see DESIGN.md).
///  - r26 is the return-address register for calls; r30 is the stack
///    pointer; r31 reads as zero.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_IR_BUILDER_H
#define SQUASH_IR_BUILDER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace vea {

/// The register reserved for entry stubs; builder-generated code never reads
/// or writes it.
inline constexpr unsigned RegStub = 25;

class ProgramBuilder;

/// Builds one function, block by block. Obtained from
/// ProgramBuilder::beginFunction(); safe to copy (it only holds indices).
class FunctionBuilder {
public:
  /// Starts a new basic block labeled "<function>.<Name>".
  void label(const std::string &Name);

  /// Appends a raw instruction to the current block.
  void emit(Inst I);

  // --- Arithmetic / logic (rc = ra OP rb, or rc = ra OP lit8) -------------
  void add(unsigned Rc, unsigned Ra, unsigned Rb);
  void sub(unsigned Rc, unsigned Ra, unsigned Rb);
  void mul(unsigned Rc, unsigned Ra, unsigned Rb);
  void umulh(unsigned Rc, unsigned Ra, unsigned Rb);
  void udiv(unsigned Rc, unsigned Ra, unsigned Rb);
  void urem(unsigned Rc, unsigned Ra, unsigned Rb);
  void and_(unsigned Rc, unsigned Ra, unsigned Rb);
  void or_(unsigned Rc, unsigned Ra, unsigned Rb);
  void xor_(unsigned Rc, unsigned Ra, unsigned Rb);
  void bic(unsigned Rc, unsigned Ra, unsigned Rb);
  void sll(unsigned Rc, unsigned Ra, unsigned Rb);
  void srl(unsigned Rc, unsigned Ra, unsigned Rb);
  void sra(unsigned Rc, unsigned Ra, unsigned Rb);
  void cmpeq(unsigned Rc, unsigned Ra, unsigned Rb);
  void cmplt(unsigned Rc, unsigned Ra, unsigned Rb);
  void cmple(unsigned Rc, unsigned Ra, unsigned Rb);
  void cmpult(unsigned Rc, unsigned Ra, unsigned Rb);
  void cmpule(unsigned Rc, unsigned Ra, unsigned Rb);

  void addi(unsigned Rc, unsigned Ra, uint32_t Lit);
  void subi(unsigned Rc, unsigned Ra, uint32_t Lit);
  void muli(unsigned Rc, unsigned Ra, uint32_t Lit);
  void andi(unsigned Rc, unsigned Ra, uint32_t Lit);
  void ori(unsigned Rc, unsigned Ra, uint32_t Lit);
  void xori(unsigned Rc, unsigned Ra, uint32_t Lit);
  void slli(unsigned Rc, unsigned Ra, uint32_t Lit);
  void srli(unsigned Rc, unsigned Ra, uint32_t Lit);
  void srai(unsigned Rc, unsigned Ra, uint32_t Lit);
  void cmpeqi(unsigned Rc, unsigned Ra, uint32_t Lit);
  void cmplti(unsigned Rc, unsigned Ra, uint32_t Lit);
  void cmplei(unsigned Rc, unsigned Ra, uint32_t Lit);
  void cmpulti(unsigned Rc, unsigned Ra, uint32_t Lit);
  void cmpulei(unsigned Rc, unsigned Ra, uint32_t Lit);

  /// rd = rs (encoded as or rd, rs, r31).
  void mov(unsigned Rd, unsigned Rs);
  /// Materializes a 32-bit constant (1 or 2 instructions).
  void li(unsigned Rd, int32_t Value);
  /// Materializes the address of \p Symbol (+ Addend); always the 2-
  /// instruction ldah/lda pair so sequences have fixed length.
  void la(unsigned Rd, const std::string &Symbol, int32_t Addend = 0);
  void nop();

  // --- Memory --------------------------------------------------------------
  void ldw(unsigned Ra, unsigned Rb, int32_t Disp);
  void ldb(unsigned Ra, unsigned Rb, int32_t Disp);
  void stw(unsigned Ra, unsigned Rb, int32_t Disp);
  void stb(unsigned Ra, unsigned Rb, int32_t Disp);
  void lda(unsigned Ra, unsigned Rb, int32_t Disp);
  void ldah(unsigned Ra, unsigned Rb, int32_t Disp);

  // --- Control flow ----------------------------------------------------
  /// Unconditional branch to block "<function>.<Name>".
  void br(const std::string &Name);
  void beq(unsigned Ra, const std::string &Name);
  void bne(unsigned Ra, const std::string &Name);
  void blt(unsigned Ra, const std::string &Name);
  void ble(unsigned Ra, const std::string &Name);
  void bgt(unsigned Ra, const std::string &Name);
  void bge(unsigned Ra, const std::string &Name);
  void blbc(unsigned Ra, const std::string &Name);
  void blbs(unsigned Ra, const std::string &Name);

  /// Direct call (bsr r26, Callee). \p Callee is a function name (not
  /// prefixed).
  void call(const std::string &Callee);
  /// Indirect call through \p Rb (jsr r26, (Rb)).
  void callIndirect(unsigned Rb);
  /// Return through r26 (ret r31, (r26)).
  void ret();

  /// Emits the table-jump idiom on \p IndexReg (clobbering IndexReg and
  /// \p ScratchReg) and attaches SwitchInfo. Creates the jump-table data
  /// object "<function>.<TableName>". Targets are block names local to this
  /// function. If \p SizeKnown is false the block is treated as having an
  /// undiscoverable table extent (excluded from compression, Section 6.2).
  void switchJump(unsigned IndexReg, unsigned ScratchReg,
                  const std::string &TableName,
                  const std::vector<std::string> &Targets,
                  bool SizeKnown = true);

  // --- Frame helpers -----------------------------------------------------
  /// Prologue: lda sp,-Frame(sp); stw r26,0(sp). \p FrameBytes >= 4.
  void enter(int32_t FrameBytes);
  /// Epilogue: ldw r26,0(sp); lda sp,Frame(sp); ret.
  void leave(int32_t FrameBytes);

  // --- System --------------------------------------------------------------
  void sys(SysFunc Func);
  /// sys Halt with exit code already in r16.
  void halt();

  const std::string &name() const { return FuncName; }

private:
  friend class ProgramBuilder;
  FunctionBuilder(ProgramBuilder &PB, size_t FuncIdx)
      : PB(&PB), FuncIdx(FuncIdx) {}

  BasicBlock &cur();
  Function &func();
  std::string qualify(const std::string &Name) const;
  void rrr(Opcode Op, unsigned Rc, unsigned Ra, unsigned Rb);
  void rri(Opcode Op, unsigned Rc, unsigned Ra, uint32_t Lit);
  void mem(Opcode Op, unsigned Ra, unsigned Rb, int32_t Disp);
  void branch(Opcode Op, unsigned Ra, const std::string &Local);

  ProgramBuilder *PB;
  size_t FuncIdx;
  std::string FuncName;
};

/// Builds a whole program.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::string Name);

  /// Starts a new function; its entry block is created with label \p Name.
  FunctionBuilder beginFunction(const std::string &Name);

  /// Adds a raw data object.
  void addData(const std::string &Name, std::vector<uint8_t> Bytes,
               uint32_t Align = 4);
  /// Adds a data object of little-endian words.
  void addDataWords(const std::string &Name,
                    const std::vector<uint32_t> &Words);
  /// Adds a word-per-entry symbol table (function-pointer table).
  void addSymbolTable(const std::string &Name,
                      const std::vector<std::string> &Symbols);
  /// Adds a zero-initialized object of \p Size bytes.
  void addBss(const std::string &Name, uint32_t Size, uint32_t Align = 4);

  void setEntry(const std::string &FunctionName);

  /// Verifies and returns the finished program; fatal error on invalid IR.
  Program build();

  Program &program() { return P; }

private:
  friend class FunctionBuilder;
  Program P;
};

} // namespace vea

#endif // SQUASH_IR_BUILDER_H
