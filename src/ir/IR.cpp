//===- ir/IR.cpp - Symbolic program representation ------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Error.h"

#include <unordered_set>

using namespace vea;

Function *Program::findFunction(const std::string &Name) {
  for (auto &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

DataObject *Program::findData(const std::string &Name) {
  for (auto &D : Data)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

uint64_t Program::instructionCount() const {
  uint64_t Count = 0;
  for (const auto &F : Functions)
    for (const auto &B : F.Blocks)
      Count += B.Insts.size();
  return Count;
}

/// True if \p I ends execution of the current path (halt or longjmp).
static bool endsExecution(const Inst &I) {
  if (I.Op != Opcode::Sys)
    return false;
  auto Func = static_cast<SysFunc>(I.Imm);
  return Func == SysFunc::Halt || Func == SysFunc::Longjmp;
}

std::string Program::verify() const {
  std::unordered_set<std::string> Labels;
  std::unordered_set<std::string> FuncNames;
  std::unordered_set<std::string> DataNames;

  for (const auto &D : Data) {
    if (!DataNames.insert(D.Name).second)
      return "duplicate data object '" + D.Name + "'";
    for (const auto &SW : D.SymWords) {
      if (SW.Offset % 4 != 0)
        return "misaligned symbol word in data object '" + D.Name + "'";
      if (SW.Offset + 4 > D.Bytes.size())
        return "symbol word out of bounds in data object '" + D.Name + "'";
    }
  }

  for (const auto &F : Functions) {
    if (F.Blocks.empty())
      return "function '" + F.Name + "' has no blocks";
    if (F.Blocks.front().Label != F.Name)
      return "function '" + F.Name + "' entry block label mismatch";
    if (!FuncNames.insert(F.Name).second)
      return "duplicate function '" + F.Name + "'";
    for (const auto &B : F.Blocks) {
      if (!Labels.insert(B.Label).second)
        return "duplicate label '" + B.Label + "'";
    }
  }

  // Per-function structural checks.
  for (const auto &F : Functions) {
    std::unordered_set<std::string> Local;
    for (const auto &B : F.Blocks)
      Local.insert(B.Label);

    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      const BasicBlock &B = F.Blocks[BI];
      if (B.Insts.empty())
        return "empty block '" + B.Label + "'";
      for (size_t II = 0; II != B.Insts.size(); ++II) {
        const Inst &I = B.Insts[II];
        unsigned OpIdx = static_cast<unsigned>(I.Op);
        if (OpIdx >= NumOpcodes || !opcodeInfo(I.Op).IsLegal)
          return "illegal opcode in block '" + B.Label + "'";
        if (I.Ra >= NumRegs || I.Rb >= NumRegs || I.Rc >= NumRegs)
          return "register out of range in block '" + B.Label + "'";
        bool IsLast = II + 1 == B.Insts.size();
        // Unconditional transfers must terminate the block; conditional
        // branches and calls may appear anywhere (superblocks).
        bool IsUncondTransfer =
            I.Op == Opcode::Br || I.Op == Opcode::Jmp || I.Op == Opcode::Ret;
        if (IsUncondTransfer && !IsLast)
          return "control transfer not at end of block '" + B.Label + "'";
        // Symbol sanity.
        if (I.Reloc == RelocKind::BranchDisp) {
          if (!isBranchFormat(I.Op))
            return "branch relocation on non-branch in '" + B.Label + "'";
          if (I.Op == Opcode::Bsr) {
            if (!FuncNames.count(I.Symbol))
              return "call to unknown function '" + I.Symbol + "' in '" +
                     B.Label + "'";
          } else if (!Local.count(I.Symbol)) {
            return "branch to label '" + I.Symbol +
                   "' outside function in block '" + B.Label + "'";
          }
        } else if (I.Reloc == RelocKind::Lo16 || I.Reloc == RelocKind::Hi16) {
          if (formatOf(I.Op) != Format::Mem)
            return "lo16/hi16 relocation on non-memory-format instruction "
                   "in '" +
                   B.Label + "'";
          if (!Labels.count(I.Symbol) && !DataNames.count(I.Symbol))
            return "reference to unknown symbol '" + I.Symbol + "' in '" +
                   B.Label + "'";
        } else if (isBranchFormat(I.Op)) {
          return "branch without target label in block '" + B.Label + "'";
        }
        if (I.Reloc == RelocKind::None && formatOf(I.Op) == Format::OpRRI &&
            (I.Imm < 0 || I.Imm > 255))
          return "8-bit literal out of range in block '" + B.Label + "'";
        if (I.Reloc == RelocKind::None && formatOf(I.Op) == Format::Mem &&
            (I.Imm < -32768 || I.Imm > 32767))
          return "16-bit displacement out of range in block '" + B.Label +
                 "'";
      }
      // Switch metadata.
      if (B.Switch) {
        const Inst &Last = B.Insts.back();
        if (Last.Op != Opcode::Jmp)
          return "switch block '" + B.Label +
                 "' does not end in an indirect jump";
        if (!DataNames.count(B.Switch->TableSymbol))
          return "switch block '" + B.Label + "' references unknown table";
        for (const auto &T : B.Switch->Targets)
          if (!Local.count(T))
            return "switch target '" + T + "' outside function in '" +
                   B.Label + "'";
      }
      // Fallthrough off the end of the function.
      bool Last = BI + 1 == F.Blocks.size();
      if (Last && B.canFallThrough() && !endsExecution(B.Insts.back()))
        return "control falls off the end of function '" + F.Name + "'";
    }
  }

  if (EntryFunction.empty() || !FuncNames.count(EntryFunction))
    return "missing or unknown entry function '" + EntryFunction + "'";
  return "";
}

//===----------------------------------------------------------------------===//
// Cfg
//===----------------------------------------------------------------------===//

Cfg::Cfg(const Program &Prog) : Prog(Prog) {
  for (uint32_t FI = 0; FI != Prog.Functions.size(); ++FI) {
    FuncEntry.push_back(static_cast<unsigned>(Refs.size()));
    const Function &F = Prog.Functions[FI];
    for (uint32_t BI = 0; BI != F.Blocks.size(); ++BI) {
      LabelToId.emplace(F.Blocks[BI].Label,
                        static_cast<unsigned>(Refs.size()));
      Refs.push_back({FI, BI});
    }
  }
  unsigned N = numBlocks();
  Succs.resize(N);
  Preds.resize(N);
  Callees.resize(N);
  IndirectCall.assign(N, 0);
  AddressTaken.assign(N, 0);
  FuncCallsSetjmp.assign(Prog.Functions.size(), 0);

  auto MarkAddressTaken = [&](const std::string &Symbol) {
    auto It = LabelToId.find(Symbol);
    if (It != LabelToId.end())
      AddressTaken[It->second] = 1;
  };

  for (const auto &D : Prog.Data)
    for (const auto &SW : D.SymWords)
      MarkAddressTaken(SW.Symbol);

  for (unsigned Id = 0; Id != N; ++Id) {
    const BlockRef &R = Refs[Id];
    const Function &F = Prog.Functions[R.FuncIdx];
    const BasicBlock &B = F.Blocks[R.BlockIdx];

    std::vector<uint8_t> SuccSeen(N, 0);
    auto AddEdge = [&](unsigned To) {
      if (SuccSeen[To])
        return;
      SuccSeen[To] = 1;
      Succs[Id].push_back(To);
      Preds[To].push_back(Id);
    };

    for (const auto &I : B.Insts) {
      if (I.Op == Opcode::Bsr && I.Reloc == RelocKind::BranchDisp)
        Callees[Id].push_back(idOf(I.Symbol));
      if (I.Op == Opcode::Jsr)
        IndirectCall[Id] = 1;
      if (I.Reloc == RelocKind::Lo16 || I.Reloc == RelocKind::Hi16)
        MarkAddressTaken(I.Symbol);
      if (I.Op == Opcode::Sys &&
          static_cast<SysFunc>(I.Imm) == SysFunc::Setjmp)
        FuncCallsSetjmp[R.FuncIdx] = 1;
      // Conditional branches may appear mid-block (superblocks).
      if (isCondBranch(I.Op))
        AddEdge(idOf(I.Symbol));
    }

    const Inst &Last = B.Insts.back();
    bool FellOff = false;
    if (isCondBranch(Last.Op)) {
      FellOff = true; // Edge already added above.
    } else if (Last.Op == Opcode::Br) {
      AddEdge(idOf(Last.Symbol));
    } else if (Last.Op == Opcode::Jmp) {
      if (B.Switch) {
        for (const auto &T : B.Switch->Targets)
          AddEdge(idOf(T));
      } else {
        IndirectCall[Id] = 1; // Unknown computed jump: treat as indirect.
      }
    } else if (Last.Op == Opcode::Ret || endsExecution(Last)) {
      // No intra-procedural successors.
    } else {
      FellOff = true; // Plain fallthrough (incl. trailing calls).
    }
    if (FellOff && R.BlockIdx + 1 < F.Blocks.size())
      AddEdge(Id + 1);
  }
}

unsigned Cfg::idOf(const std::string &Label) const {
  auto It = LabelToId.find(Label);
  if (It == LabelToId.end())
    reportFatalError("Cfg: unknown label '" + Label + "'");
  return It->second;
}

const BasicBlock &Cfg::block(unsigned BlockId) const {
  const BlockRef &R = Refs[BlockId];
  return Prog.Functions[R.FuncIdx].Blocks[R.BlockIdx];
}
