//===- ir/IR.h - Symbolic program representation ---------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic program representation that squash operates on: functions of
/// basic blocks of symbolic instructions, plus data objects. This level is
/// the analog of what the paper's binary rewriter recovers from a statically
/// linked Alpha executable with relocation information: instructions with
/// symbol references still distinguishable from constants, and a control
/// flow graph with known jump-table extents where the idiom is recognizable.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_IR_IR_H
#define SQUASH_IR_IR_H

#include "isa/Isa.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace vea {

/// How a symbolic operand is applied to the instruction encoding at layout
/// time.
enum class RelocKind : uint8_t {
  None,       ///< Imm is the literal field value.
  BranchDisp, ///< Disp21 = (addrOf(Symbol) - (PC + 4)) / 4.
  Lo16,       ///< Disp16 = low half of (addrOf(Symbol) + Imm), Alpha-style
              ///< pairing with Hi16.
  Hi16,       ///< Disp16 = adjusted high half of (addrOf(Symbol) + Imm).
};

/// One symbolic instruction. Register fields are explicit; the immediate
/// field (disp16 / disp21 / lit8 / sfunc26, whichever the format has) is
/// either the literal \c Imm or a relocated reference to \c Symbol.
struct Inst {
  Opcode Op = Opcode::Sentinel;
  uint8_t Ra = RegZero;
  uint8_t Rb = RegZero;
  uint8_t Rc = RegZero;
  int32_t Imm = 0;
  std::string Symbol;
  RelocKind Reloc = RelocKind::None;

  bool hasSymbol() const { return Reloc != RelocKind::None; }
};

/// Metadata attached to a basic block whose terminator is an indirect jump
/// through a jump table (the unswitching target of paper Section 6.2).
struct SwitchInfo {
  std::string TableSymbol;          ///< Data object holding target addresses.
  std::vector<std::string> Targets; ///< Case target block labels, in order.
  uint8_t IndexReg = RegZero;       ///< Register holding the case index.
  uint8_t ScratchReg = RegZero;     ///< Register known dead at the jump,
                                    ///< usable by the unswitched compare
                                    ///< chain.
  uint8_t SeqLen = 6;               ///< Number of trailing instructions in
                                    ///< the block forming the table-jump
                                    ///< idiom (replaced wholesale when
                                    ///< unswitching).
  /// False models the binary-rewriting situation where the extent of the
  /// jump table cannot be determined; such blocks and their targets are
  /// excluded from compression (Section 6.2).
  bool SizeKnown = true;
};

/// A basic block: a label plus instructions. Calls (Bsr/Jsr) and
/// conditional branches may appear anywhere (conditional branches
/// mid-block make the block an extended basic block / superblock — there
/// are no labels mid-block, so control never enters the middle);
/// unconditional transfers (Br, Jmp, Ret) may only be the final
/// instruction. A block without a final unconditional transfer falls
/// through to the next block of its function.
struct BasicBlock {
  std::string Label; ///< Globally unique.
  std::vector<Inst> Insts;
  std::optional<SwitchInfo> Switch;

  unsigned size() const { return static_cast<unsigned>(Insts.size()); }
  const Inst *terminator() const {
    if (Insts.empty())
      return nullptr;
    const Inst &Last = Insts.back();
    return isControlFlow(Last.Op) && !isDirectCall(Last.Op) &&
                   Last.Op != Opcode::Jsr
               ? &Last
               : nullptr;
  }
  /// True if control can reach the textually next block.
  bool canFallThrough() const {
    const Inst *Term = terminator();
    if (Term)
      return isCondBranch(Term->Op);
    if (!Insts.empty() && Insts.back().Op == Opcode::Sys) {
      auto Func = static_cast<SysFunc>(Insts.back().Imm);
      if (Func == SysFunc::Halt || Func == SysFunc::Longjmp)
        return false; // Execution never continues past these.
    }
    return true;
  }
};

/// A function: an entry block (first) plus any number of others. The entry
/// block's label equals the function name.
struct Function {
  std::string Name;
  std::vector<BasicBlock> Blocks;

  const BasicBlock &entry() const { return Blocks.front(); }
};

/// A data object placed in the image's data segment. \c Bytes is the full
/// payload; \c SymWords lists word-aligned offsets that are patched with
/// absolute symbol addresses at layout time (jump tables, function-pointer
/// tables).
struct DataObject {
  struct SymWord {
    uint32_t Offset; ///< Byte offset within the object; word aligned.
    std::string Symbol;
    int32_t Addend = 0;
  };

  std::string Name;
  uint32_t Align = 4;
  std::vector<uint8_t> Bytes;
  std::vector<SymWord> SymWords;
};

/// A whole program.
struct Program {
  std::string Name;
  std::vector<Function> Functions;
  std::vector<DataObject> Data;
  std::string EntryFunction;

  Function *findFunction(const std::string &Name);
  const Function *findFunction(const std::string &Name) const;
  DataObject *findData(const std::string &Name);

  /// Total instruction count across all blocks.
  uint64_t instructionCount() const;

  /// Checks structural invariants; returns an empty string on success or a
  /// description of the first problem found.
  std::string verify() const;
};

/// Identifies a block globally: index of its function and index within it.
struct BlockRef {
  uint32_t FuncIdx = 0;
  uint32_t BlockIdx = 0;

  bool operator==(const BlockRef &O) const {
    return FuncIdx == O.FuncIdx && BlockIdx == O.BlockIdx;
  }
};

/// A whole-program control flow graph over block ids (dense indices in
/// function-then-block order), with call-graph edges kept separate from
/// intra-procedural edges, as squash's analyses need both.
class Cfg {
public:
  explicit Cfg(const Program &Prog);

  unsigned numBlocks() const { return static_cast<unsigned>(Refs.size()); }
  const BlockRef &ref(unsigned BlockId) const { return Refs[BlockId]; }
  unsigned idOf(const std::string &Label) const;
  bool hasLabel(const std::string &Label) const {
    return LabelToId.count(Label) != 0;
  }
  const BasicBlock &block(unsigned BlockId) const;
  unsigned functionOf(unsigned BlockId) const { return Refs[BlockId].FuncIdx; }

  /// Intra-procedural successors (branches, fallthrough, switch targets).
  const std::vector<unsigned> &succs(unsigned BlockId) const {
    return Succs[BlockId];
  }
  const std::vector<unsigned> &preds(unsigned BlockId) const {
    return Preds[BlockId];
  }

  /// Block ids of direct-call targets appearing in the block (entry blocks
  /// of callees).
  const std::vector<unsigned> &callees(unsigned BlockId) const {
    return Callees[BlockId];
  }

  /// True if the block contains an indirect call (Jsr) or an indirect jump
  /// with unknown targets.
  bool hasIndirectCall(unsigned BlockId) const {
    return IndirectCall[BlockId] != 0;
  }

  /// True if the block's address is referenced from data or address
  /// materialization (its label escapes into a register or memory).
  bool isAddressTaken(unsigned BlockId) const {
    return AddressTaken[BlockId] != 0;
  }

  /// True if the containing function (transitively: the function itself)
  /// calls setjmp. Such functions are never compressed (Section 2.2).
  bool functionCallsSetjmp(unsigned FuncIdx) const {
    return FuncCallsSetjmp[FuncIdx] != 0;
  }

  /// Entry block id of function \p FuncIdx.
  unsigned entryBlock(unsigned FuncIdx) const { return FuncEntry[FuncIdx]; }
  unsigned numFunctions() const {
    return static_cast<unsigned>(FuncEntry.size());
  }

  const Program &program() const { return Prog; }

private:
  const Program &Prog;
  std::vector<BlockRef> Refs;
  std::unordered_map<std::string, unsigned> LabelToId;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  std::vector<std::vector<unsigned>> Callees;
  std::vector<uint8_t> IndirectCall;
  std::vector<uint8_t> AddressTaken;
  std::vector<uint8_t> FuncCallsSetjmp;
  std::vector<unsigned> FuncEntry;
};

} // namespace vea

#endif // SQUASH_IR_IR_H
