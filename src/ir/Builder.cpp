//===- ir/Builder.cpp - Fluent program construction API -------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "support/Error.h"

using namespace vea;

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

ProgramBuilder::ProgramBuilder(std::string Name) { P.Name = std::move(Name); }

FunctionBuilder ProgramBuilder::beginFunction(const std::string &Name) {
  Function F;
  F.Name = Name;
  BasicBlock Entry;
  Entry.Label = Name;
  F.Blocks.push_back(std::move(Entry));
  P.Functions.push_back(std::move(F));
  FunctionBuilder FB(*this, P.Functions.size() - 1);
  FB.FuncName = Name;
  return FB;
}

void ProgramBuilder::addData(const std::string &Name,
                             std::vector<uint8_t> Bytes, uint32_t Align) {
  DataObject D;
  D.Name = Name;
  D.Align = Align;
  D.Bytes = std::move(Bytes);
  P.Data.push_back(std::move(D));
}

void ProgramBuilder::addDataWords(const std::string &Name,
                                  const std::vector<uint32_t> &Words) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(Words.size() * 4);
  for (uint32_t W : Words) {
    Bytes.push_back(static_cast<uint8_t>(W));
    Bytes.push_back(static_cast<uint8_t>(W >> 8));
    Bytes.push_back(static_cast<uint8_t>(W >> 16));
    Bytes.push_back(static_cast<uint8_t>(W >> 24));
  }
  addData(Name, std::move(Bytes));
}

void ProgramBuilder::addSymbolTable(const std::string &Name,
                                    const std::vector<std::string> &Symbols) {
  DataObject D;
  D.Name = Name;
  D.Bytes.assign(Symbols.size() * 4, 0);
  for (uint32_t I = 0; I != Symbols.size(); ++I)
    D.SymWords.push_back({I * 4, Symbols[I], 0});
  P.Data.push_back(std::move(D));
}

void ProgramBuilder::addBss(const std::string &Name, uint32_t Size,
                            uint32_t Align) {
  DataObject D;
  D.Name = Name;
  D.Align = Align;
  D.Bytes.assign(Size, 0);
  P.Data.push_back(std::move(D));
}

void ProgramBuilder::setEntry(const std::string &FunctionName) {
  P.EntryFunction = FunctionName;
}

Program ProgramBuilder::build() {
  std::string Err = P.verify();
  if (!Err.empty())
    reportFatalError("ProgramBuilder: invalid program '" + P.Name +
                     "': " + Err);
  return std::move(P);
}

//===----------------------------------------------------------------------===//
// FunctionBuilder
//===----------------------------------------------------------------------===//

Function &FunctionBuilder::func() { return PB->P.Functions[FuncIdx]; }

BasicBlock &FunctionBuilder::cur() { return func().Blocks.back(); }

std::string FunctionBuilder::qualify(const std::string &Name) const {
  // The entry block is addressed by the bare function name.
  if (Name == FuncName)
    return Name;
  return FuncName + "." + Name;
}

void FunctionBuilder::label(const std::string &Name) {
  BasicBlock B;
  B.Label = qualify(Name);
  func().Blocks.push_back(std::move(B));
}

void FunctionBuilder::emit(Inst I) { cur().Insts.push_back(std::move(I)); }

void FunctionBuilder::rrr(Opcode Op, unsigned Rc, unsigned Ra, unsigned Rb) {
  Inst I;
  I.Op = Op;
  I.Rc = static_cast<uint8_t>(Rc);
  I.Ra = static_cast<uint8_t>(Ra);
  I.Rb = static_cast<uint8_t>(Rb);
  emit(I);
}

void FunctionBuilder::rri(Opcode Op, unsigned Rc, unsigned Ra, uint32_t Lit) {
  assert(Lit < 256 && "8-bit literal out of range");
  Inst I;
  I.Op = Op;
  I.Rc = static_cast<uint8_t>(Rc);
  I.Ra = static_cast<uint8_t>(Ra);
  I.Imm = static_cast<int32_t>(Lit);
  emit(I);
}

void FunctionBuilder::mem(Opcode Op, unsigned Ra, unsigned Rb, int32_t Disp) {
  Inst I;
  I.Op = Op;
  I.Ra = static_cast<uint8_t>(Ra);
  I.Rb = static_cast<uint8_t>(Rb);
  I.Imm = Disp;
  emit(I);
}

void FunctionBuilder::branch(Opcode Op, unsigned Ra,
                             const std::string &Local) {
  Inst I;
  I.Op = Op;
  I.Ra = static_cast<uint8_t>(Ra);
  I.Symbol = qualify(Local);
  I.Reloc = RelocKind::BranchDisp;
  emit(I);
}

#define RRR_OP(NAME, OPC)                                                     \
  void FunctionBuilder::NAME(unsigned Rc, unsigned Ra, unsigned Rb) {         \
    rrr(Opcode::OPC, Rc, Ra, Rb);                                             \
  }
RRR_OP(add, Add)
RRR_OP(sub, Sub)
RRR_OP(mul, Mul)
RRR_OP(umulh, Umulh)
RRR_OP(udiv, Udiv)
RRR_OP(urem, Urem)
RRR_OP(and_, And)
RRR_OP(or_, Or)
RRR_OP(xor_, Xor)
RRR_OP(bic, Bic)
RRR_OP(sll, Sll)
RRR_OP(srl, Srl)
RRR_OP(sra, Sra)
RRR_OP(cmpeq, Cmpeq)
RRR_OP(cmplt, Cmplt)
RRR_OP(cmple, Cmple)
RRR_OP(cmpult, Cmpult)
RRR_OP(cmpule, Cmpule)
#undef RRR_OP

#define RRI_OP(NAME, OPC)                                                     \
  void FunctionBuilder::NAME(unsigned Rc, unsigned Ra, uint32_t Lit) {        \
    rri(Opcode::OPC, Rc, Ra, Lit);                                            \
  }
RRI_OP(addi, Addi)
RRI_OP(subi, Subi)
RRI_OP(muli, Muli)
RRI_OP(andi, Andi)
RRI_OP(ori, Ori)
RRI_OP(xori, Xori)
RRI_OP(slli, Slli)
RRI_OP(srli, Srli)
RRI_OP(srai, Srai)
RRI_OP(cmpeqi, Cmpeqi)
RRI_OP(cmplti, Cmplti)
RRI_OP(cmplei, Cmplei)
RRI_OP(cmpulti, Cmpulti)
RRI_OP(cmpulei, Cmpulei)
#undef RRI_OP

void FunctionBuilder::mov(unsigned Rd, unsigned Rs) {
  rrr(Opcode::Or, Rd, Rs, RegZero);
}

void FunctionBuilder::li(unsigned Rd, int32_t Value) {
  if (Value >= -32768 && Value <= 32767) {
    lda(Rd, RegZero, Value);
    return;
  }
  int32_t Lo = static_cast<int16_t>(Value & 0xFFFF);
  int64_t HiPart = (static_cast<int64_t>(Value) - Lo) >> 16;
  assert(HiPart >= -32768 && HiPart <= 32767 && "constant out of range");
  ldah(Rd, RegZero, static_cast<int32_t>(HiPart));
  if (Lo != 0)
    lda(Rd, Rd, Lo);
}

void FunctionBuilder::la(unsigned Rd, const std::string &Symbol,
                         int32_t Addend) {
  Inst Hi;
  Hi.Op = Opcode::Ldah;
  Hi.Ra = static_cast<uint8_t>(Rd);
  Hi.Rb = RegZero;
  Hi.Symbol = Symbol;
  Hi.Imm = Addend;
  Hi.Reloc = RelocKind::Hi16;
  emit(Hi);
  Inst Lo;
  Lo.Op = Opcode::Lda;
  Lo.Ra = static_cast<uint8_t>(Rd);
  Lo.Rb = static_cast<uint8_t>(Rd);
  Lo.Symbol = Symbol;
  Lo.Imm = Addend;
  Lo.Reloc = RelocKind::Lo16;
  emit(Lo);
}

void FunctionBuilder::nop() {
  rrr(Opcode::Or, RegZero, RegZero, RegZero);
}

#define MEM_OP(NAME, OPC)                                                     \
  void FunctionBuilder::NAME(unsigned Ra, unsigned Rb, int32_t Disp) {        \
    mem(Opcode::OPC, Ra, Rb, Disp);                                           \
  }
MEM_OP(ldw, Ldw)
MEM_OP(ldb, Ldb)
MEM_OP(stw, Stw)
MEM_OP(stb, Stb)
MEM_OP(lda, Lda)
MEM_OP(ldah, Ldah)
#undef MEM_OP

void FunctionBuilder::br(const std::string &Name) {
  branch(Opcode::Br, RegZero, Name);
}

#define CBR_OP(NAME, OPC)                                                     \
  void FunctionBuilder::NAME(unsigned Ra, const std::string &Name) {          \
    branch(Opcode::OPC, Ra, Name);                                            \
  }
CBR_OP(beq, Beq)
CBR_OP(bne, Bne)
CBR_OP(blt, Blt)
CBR_OP(ble, Ble)
CBR_OP(bgt, Bgt)
CBR_OP(bge, Bge)
CBR_OP(blbc, Blbc)
CBR_OP(blbs, Blbs)
#undef CBR_OP

void FunctionBuilder::call(const std::string &Callee) {
  Inst I;
  I.Op = Opcode::Bsr;
  I.Ra = RegRA;
  I.Symbol = Callee;
  I.Reloc = RelocKind::BranchDisp;
  emit(I);
}

void FunctionBuilder::callIndirect(unsigned Rb) {
  Inst I;
  I.Op = Opcode::Jsr;
  I.Ra = RegRA;
  I.Rb = static_cast<uint8_t>(Rb);
  emit(I);
}

void FunctionBuilder::ret() {
  Inst I;
  I.Op = Opcode::Ret;
  I.Ra = RegZero;
  I.Rb = RegRA;
  emit(I);
}

void FunctionBuilder::switchJump(unsigned IndexReg, unsigned ScratchReg,
                                 const std::string &TableName,
                                 const std::vector<std::string> &Targets,
                                 bool SizeKnown) {
  assert(!Targets.empty() && "switch needs at least one target");
  assert(IndexReg != ScratchReg && IndexReg != RegZero &&
         ScratchReg != RegZero && "bad switch registers");

  std::string TableSym = qualify(TableName);
  std::vector<std::string> Qualified;
  Qualified.reserve(Targets.size());
  for (const auto &T : Targets)
    Qualified.push_back(qualify(T));
  PB->addSymbolTable(TableSym, Qualified);

  // The 6-instruction table-jump idiom (SwitchInfo::SeqLen):
  //   slli idx, idx, 2 ; ldah s, hi(tab) ; lda s, lo(tab)(s)
  //   add s, s, idx    ; ldw s, 0(s)     ; jmp (s)
  slli(IndexReg, IndexReg, 2);
  la(ScratchReg, TableSym);
  add(ScratchReg, ScratchReg, IndexReg);
  ldw(ScratchReg, ScratchReg, 0);
  Inst J;
  J.Op = Opcode::Jmp;
  J.Ra = RegZero;
  J.Rb = static_cast<uint8_t>(ScratchReg);
  emit(J);

  SwitchInfo SI;
  SI.TableSymbol = TableSym;
  SI.Targets = std::move(Qualified);
  SI.IndexReg = static_cast<uint8_t>(IndexReg);
  SI.ScratchReg = static_cast<uint8_t>(ScratchReg);
  SI.SeqLen = 6;
  SI.SizeKnown = SizeKnown;
  cur().Switch = SI;
}

void FunctionBuilder::enter(int32_t FrameBytes) {
  assert(FrameBytes >= 4 && FrameBytes % 4 == 0 && "bad frame size");
  lda(RegSP, RegSP, -FrameBytes);
  stw(RegRA, RegSP, 0);
}

void FunctionBuilder::leave(int32_t FrameBytes) {
  assert(FrameBytes >= 4 && FrameBytes % 4 == 0 && "bad frame size");
  ldw(RegRA, RegSP, 0);
  lda(RegSP, RegSP, FrameBytes);
  ret();
}

void FunctionBuilder::sys(SysFunc Func) {
  Inst I;
  I.Op = Opcode::Sys;
  I.Imm = static_cast<int32_t>(Func);
  emit(I);
}

void FunctionBuilder::halt() { sys(SysFunc::Halt); }
