//===- support/Metrics.h - Named counter/gauge/histogram registry -*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny metrics registry: named 64-bit counters, double gauges, and
/// log-bucketed histograms with two serialization surfaces — JSON and
/// Prometheus text exposition. Every measurement the pipeline and the
/// runtime produce (SquashStats, RegionStats, BufferSafeStats,
/// UnswitchStats, RuntimeSystem::Stats, machine cycle/instruction counts,
/// trap-latency distributions) registers here through an exportMetrics()
/// hook, so tools, benches, and tests consume one machine-readable
/// artifact instead of N ad-hoc printf formats (see DESIGN.md §12-§13).
///
/// A metric's kind is fixed by the call that creates it: writing a gauge
/// over an existing counter (or any other kind mix-up) is rejected — the
/// setter returns false, asserts in debug builds, and leaves the entry
/// untouched — instead of silently reinterpreting the shared storage.
///
/// The registry preserves insertion order in its output so repeated runs
/// diff cleanly, and is deliberately allocation-light: it is filled once
/// after a run, never on the simulated hot path.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_METRICS_H
#define SQUASH_SUPPORT_METRICS_H

#include "support/Histogram.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace vea {

class MetricsRegistry {
public:
  enum class Kind : uint8_t { Counter, Gauge, Histogram };

  /// Sets (or overwrites) the integer counter \p Name. Returns false (and
  /// debug-asserts) if \p Name already exists with a different kind.
  bool setCounter(const std::string &Name, uint64_t Value);

  /// Adds \p Delta to counter \p Name, creating it at zero first. Returns
  /// false (and debug-asserts) on a kind conflict.
  bool addCounter(const std::string &Name, uint64_t Delta);

  /// Sets (or overwrites) the floating-point gauge \p Name. Returns false
  /// (and debug-asserts) on a kind conflict.
  bool setGauge(const std::string &Name, double Value);

  /// Stores a snapshot of \p H as histogram \p Name (overwriting a previous
  /// snapshot). Returns false (and debug-asserts) on a kind conflict.
  bool setHistogram(const std::string &Name, const Histogram &H);

  /// Lookup helpers (tests and report generators).
  bool has(const std::string &Name) const;
  /// Kind of \p Name; Counter if absent (pair with has()).
  Kind kind(const std::string &Name) const;
  uint64_t counter(const std::string &Name) const; ///< 0 if absent/other.
  double gauge(const std::string &Name) const;     ///< 0.0 if absent/other.
  /// The histogram snapshot, or nullptr if absent or another kind.
  const Histogram *histogram(const std::string &Name) const;

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// All metric names, in insertion order.
  std::vector<std::string> names() const;

  /// Serializes every metric as one JSON object, insertion-ordered:
  ///   {"squash.regions.packed": 7, "run.cycles": 123,
  ///    "runtime.trap_cycles": {"count":4,...,"buckets":[[64,4]]}, ...}
  /// Counters emit as integers, gauges as round-trip decimals (non-finite
  /// gauges degrade to 0 so the output is always valid JSON), histograms
  /// as the nested object Histogram::toJson produces.
  std::string toJson() const;

  /// Prometheus text exposition (version 0.0.4): one `# TYPE` line plus
  /// sample lines per metric, insertion-ordered. Names are sanitized to
  /// the Prometheus alphabet ('.' and other invalid characters become
  /// '_'). Histograms emit cumulative `_bucket{le="..."}` samples (one per
  /// nonzero bucket, upper bounds inclusive), `_sum`, and `_count`.
  std::string toPrometheus() const;

private:
  struct Entry {
    std::string Name;
    Kind K = Kind::Counter;
    uint64_t U64 = 0;
    double Dbl = 0.0;
    std::unique_ptr<Histogram> Hist; ///< Set for Kind::Histogram only.
  };
  /// Finds \p Name or creates it with kind \p K; nullptr on kind conflict.
  Entry *entry(const std::string &Name, Kind K);
  const Entry *find(const std::string &Name) const;

  std::vector<Entry> Entries;
  std::unordered_map<std::string, size_t> Index;
};

/// Escapes \p S for inclusion in a JSON string literal (quotes excluded).
std::string jsonEscape(const std::string &S);

/// True when \p Name is registrable: nonempty and free of control
/// characters, quotes, and backslashes. The registry rejects (setters
/// return false) rather than sanitizing, so distinct invalid names can
/// never alias a legitimate one.
bool validMetricName(const std::string &Name);

/// Formats \p V at round-trip precision (%.17g); non-finite values degrade
/// to "0" so both the JSON and Prometheus surfaces stay parseable. Shared
/// by MetricsRegistry::toJson and toPrometheus.
std::string formatGauge(double V);

/// Maps \p Name onto the Prometheus metric-name alphabet
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other character (the registry's '.'
/// separators, most prominently) becomes '_', and a leading digit gains a
/// '_' prefix.
std::string prometheusName(const std::string &Name);

} // namespace vea

#endif // SQUASH_SUPPORT_METRICS_H
