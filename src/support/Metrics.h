//===- support/Metrics.h - Named counter/gauge registry --------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny metrics registry: named 64-bit counters and double gauges with a
/// single JSON serialization surface. Every measurement the pipeline and
/// the runtime produce (SquashStats, RegionStats, BufferSafeStats,
/// UnswitchStats, RuntimeSystem::Stats, machine cycle/instruction counts)
/// registers here through an exportMetrics() hook, so tools, benches, and
/// tests consume one machine-readable artifact instead of N ad-hoc printf
/// formats (see DESIGN.md §12).
///
/// The registry preserves insertion order in its JSON output so repeated
/// runs diff cleanly, and is deliberately allocation-light: it is filled
/// once after a run, never on the simulated hot path.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_METRICS_H
#define SQUASH_SUPPORT_METRICS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vea {

class MetricsRegistry {
public:
  /// Sets (or overwrites) the integer counter \p Name.
  void setCounter(const std::string &Name, uint64_t Value);

  /// Adds \p Delta to counter \p Name, creating it at zero first.
  void addCounter(const std::string &Name, uint64_t Delta);

  /// Sets (or overwrites) the floating-point gauge \p Name.
  void setGauge(const std::string &Name, double Value);

  /// Lookup helpers (tests and report generators).
  bool has(const std::string &Name) const;
  uint64_t counter(const std::string &Name) const; ///< 0 if absent/gauge.
  double gauge(const std::string &Name) const;     ///< 0.0 if absent.

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// All metric names, in insertion order.
  std::vector<std::string> names() const;

  /// Serializes every metric as one flat JSON object, insertion-ordered:
  ///   {"squash.regions.packed": 7, "run.cycles": 123, ...}
  /// Counters emit as integers, gauges as decimals (non-finite gauges
  /// degrade to 0 so the output is always valid JSON).
  std::string toJson() const;

private:
  struct Entry {
    std::string Name;
    bool IsCounter = true;
    uint64_t U64 = 0;
    double Dbl = 0.0;
  };
  Entry &entry(const std::string &Name);
  const Entry *find(const std::string &Name) const;

  std::vector<Entry> Entries;
  std::unordered_map<std::string, size_t> Index;
};

/// Escapes \p S for inclusion in a JSON string literal (quotes excluded).
std::string jsonEscape(const std::string &S);

} // namespace vea

#endif // SQUASH_SUPPORT_METRICS_H
