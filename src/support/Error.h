//===- support/Error.h - Error reporting helpers --------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error plumbing in the spirit of LLVM's Error/Expected, sized for
/// this project: programmatic errors abort via reportFatalError(); recoverable
/// errors travel as ErrorOr<T> carrying a message.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_ERROR_H
#define SQUASH_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vea {

/// Prints \p Message to stderr and aborts. For invariant violations that
/// indicate a bug in this library, not bad user input.
[[noreturn]] void reportFatalError(const std::string &Message);

/// A value-or-error-message carrier for recoverable failures (parse errors,
/// malformed images, resource exhaustion in the simulated runtime).
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}

  static ErrorOr failure(std::string Message) {
    ErrorOr E;
    E.Message = std::move(Message);
    return E;
  }

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  T &get() {
    assert(Value && "accessing value of failed ErrorOr");
    return *Value;
  }
  const T &get() const {
    assert(Value && "accessing value of failed ErrorOr");
    return *Value;
  }
  T take() {
    assert(Value && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

  const std::string &message() const { return Message; }

private:
  ErrorOr() = default;
  std::optional<T> Value;
  std::string Message;
};

} // namespace vea

#endif // SQUASH_SUPPORT_ERROR_H
