//===- support/Status.cpp - Recoverable error taxonomy --------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include "support/Span.h"

using namespace vea;

Status Status::error(StatusCode Code, std::string Message) {
  Status S;
  S.Code = Code;
  S.Message = std::move(Message);
  if (FlightRecorder::armed())
    FlightRecorder::instance().noteStatus(statusCodeName(Code), S.Message);
  return S;
}

const char *vea::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid argument";
  case StatusCode::MalformedProgram:
    return "malformed program";
  case StatusCode::MalformedImage:
    return "malformed image";
  case StatusCode::CorruptBlob:
    return "corrupt blob";
  case StatusCode::CorruptOffsetTable:
    return "corrupt offset table";
  case StatusCode::LayoutError:
    return "layout error";
  case StatusCode::EncodingError:
    return "encoding error";
  case StatusCode::ResourceExhausted:
    return "resource exhausted";
  case StatusCode::DeadlineExceeded:
    return "deadline exceeded";
  case StatusCode::RuntimeFault:
    return "runtime fault";
  case StatusCode::InternalError:
    return "internal error";
  }
  return "unknown";
}

std::string Status::toString() const {
  if (ok())
    return "ok";
  return std::string(statusCodeName(Code)) + ": " + Message;
}
