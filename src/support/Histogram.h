//===- support/Histogram.h - Log-bucketed latency histogram ----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, log-linear (HDR-style) histogram for uint64 samples —
/// trap latencies, decode cycles, cache hit streaks. The bucket layout is
/// the classic log-linear scheme: each power-of-two octave is split into
/// SubBuckets linear sub-buckets, so relative quantile error is bounded by
/// 1/SubBuckets (12.5%) while the whole 64-bit range fits in NumBuckets
/// counters with no allocation, ever.
///
/// Values below 2*SubBuckets land in single-valued buckets, so
/// distributions of small integers (hit streaks, sub-16-cycle latencies)
/// report exact percentiles.
///
/// record() is a couple of arithmetic operations (bit-width + array
/// increment) and is safe to call on the simulated hot path; the summary
/// operations (percentile, toJson) walk the bucket array and are meant for
/// post-run reporting.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_HISTOGRAM_H
#define SQUASH_SUPPORT_HISTOGRAM_H

#include <array>
#include <bit>
#include <cstdint>
#include <string>

namespace vea {

class Histogram {
public:
  /// Sub-buckets per power-of-two octave (8: quantiles within 12.5%).
  static constexpr unsigned SubBucketBits = 3;
  static constexpr unsigned SubBuckets = 1u << SubBucketBits;
  /// Buckets covering [0, UINT64_MAX]: one linear run for the first two
  /// octaves plus SubBuckets per remaining octave.
  static constexpr unsigned NumBuckets = (64 - SubBucketBits + 1) * SubBuckets;

  /// Bucket index of \p V. Exact for V < 2*SubBuckets, log-linear above.
  static unsigned bucketIndex(uint64_t V) {
    if (V < SubBuckets)
      return static_cast<unsigned>(V);
    const unsigned P = std::bit_width(V) - 1; // position of the top set bit
    const unsigned Octave = P - SubBucketBits + 1;
    return Octave * SubBuckets +
           static_cast<unsigned>((V >> (P - SubBucketBits)) - SubBuckets);
  }

  /// Smallest value mapping to bucket \p Index.
  static uint64_t bucketLowerBound(unsigned Index) {
    if (Index < 2 * SubBuckets)
      return Index;
    const unsigned Octave = Index / SubBuckets;
    const unsigned Sub = Index % SubBuckets;
    return static_cast<uint64_t>(SubBuckets + Sub) << (Octave - 1);
  }

  /// Largest value mapping to bucket \p Index (inclusive).
  static uint64_t bucketUpperBound(unsigned Index) {
    if (Index < 2 * SubBuckets)
      return Index;
    const unsigned Octave = Index / SubBuckets;
    const uint64_t Width = 1ull << (Octave - 1);
    return bucketLowerBound(Index) + (Width - 1);
  }

  void record(uint64_t V) { recordN(V, 1); }
  void recordN(uint64_t V, uint64_t N) {
    if (N == 0)
      return;
    Counts[bucketIndex(V)] += N;
    if (Count_ == 0 || V < Min_)
      Min_ = V;
    if (Count_ == 0 || V > Max_)
      Max_ = V;
    Count_ += N;
    Sum_ += V * N;
  }

  /// Element-wise sum of two histograms (associative and commutative, so
  /// per-shard histograms can be reduced in any order).
  void merge(const Histogram &Other);

  void reset();

  uint64_t count() const { return Count_; }
  uint64_t sum() const { return Sum_; }
  uint64_t min() const { return Count_ ? Min_ : 0; } ///< 0 when empty.
  uint64_t max() const { return Count_ ? Max_ : 0; } ///< 0 when empty.
  double mean() const {
    return Count_ ? static_cast<double>(Sum_) / static_cast<double>(Count_)
                  : 0.0;
  }
  uint64_t bucketCount(unsigned Index) const { return Counts[Index]; }

  /// Value at percentile \p P (0..100]: the lower bound of the bucket
  /// holding the sample of rank ceil(P/100 * count), clamped to the
  /// observed [min, max]. Exact when every sample is a bucket lower bound
  /// (always true below 2*SubBuckets); within one sub-bucket otherwise.
  /// Returns 0 on an empty histogram.
  uint64_t percentile(double P) const;

  /// One JSON object: exact count/sum/min/max, the standard percentile
  /// ladder, and the nonzero buckets as [lower_bound, count] pairs.
  ///   {"count":12,"sum":340,"min":1,"max":99,"p50":8,"p90":64,"p99":96,
  ///    "buckets":[[1,3],[8,9]]}
  std::string toJson() const;

private:
  std::array<uint64_t, NumBuckets> Counts{};
  uint64_t Count_ = 0;
  uint64_t Sum_ = 0;
  uint64_t Min_ = 0;
  uint64_t Max_ = 0;
};

} // namespace vea

#endif // SQUASH_SUPPORT_HISTOGRAM_H
