//===- support/BitStream.h - MSB-first bit-level I/O ----------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MSB-first bit writer/reader used by the canonical Huffman coder.
/// Codewords are emitted most-significant-bit first so that the decoder can
/// consume one bit at a time exactly as the paper's DECODE() loop does.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_BITSTREAM_H
#define SQUASH_SUPPORT_BITSTREAM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vea {

/// Accumulates bits MSB-first into a growing byte buffer.
class BitWriter {
public:
  /// Appends the low \p NumBits bits of \p Value, most significant first.
  void writeBits(uint64_t Value, unsigned NumBits) {
    assert(NumBits <= 64 && "bit count out of range");
    for (unsigned I = NumBits; I-- > 0;)
      writeBit(static_cast<unsigned>((Value >> I) & 1));
  }

  /// Appends a single bit (0 or 1).
  void writeBit(unsigned Bit) {
    assert(Bit <= 1 && "bit must be 0 or 1");
    if (BitPos == 0)
      Bytes.push_back(0);
    if (Bit)
      Bytes.back() |= static_cast<uint8_t>(1u << (7 - BitPos));
    BitPos = (BitPos + 1) & 7;
  }

  /// Appends the first \p NumBits bits of \p Data (MSB-first within each
  /// byte), preserving bit order across any current misalignment. Used to
  /// concatenate independently produced bitstreams deterministically.
  void appendBits(const uint8_t *Data, size_t NumBits) {
    size_t FullBytes = NumBits / 8;
    if (BitPos == 0) {
      // Aligned fast path: whole bytes splice in directly.
      Bytes.insert(Bytes.end(), Data, Data + FullBytes);
    } else {
      for (size_t I = 0; I != FullBytes; ++I)
        writeBits(Data[I], 8);
    }
    if (unsigned Rem = static_cast<unsigned>(NumBits % 8))
      writeBits(static_cast<uint64_t>(Data[FullBytes]) >> (8 - Rem), Rem);
  }

  /// Appends every bit of \p Other.
  void append(const BitWriter &Other) {
    appendBits(Other.bytes().data(), Other.bitSize());
  }

  /// Pads with zero bits to the next byte boundary.
  void alignToByte() { BitPos = 0; }

  /// Total number of bits written so far.
  size_t bitSize() const {
    return Bytes.size() * 8 - (BitPos == 0 ? 0 : (8 - BitPos));
  }

  /// Byte size of the buffer (including any partial final byte).
  size_t byteSize() const { return Bytes.size(); }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
  unsigned BitPos = 0; ///< Next free bit within the last byte, 0..7.
};

/// Reads bits MSB-first from a byte buffer.
class BitReader {
public:
  BitReader(const uint8_t *Data, size_t NumBytes)
      : Data(Data), NumBytes(NumBytes) {}

  explicit BitReader(const std::vector<uint8_t> &Bytes)
      : BitReader(Bytes.data(), Bytes.size()) {}

  /// Reads a single bit; returns 0 past the end of the buffer (the Huffman
  /// decoder never legitimately reads past a sentinel, and region codecs
  /// validate bit positions separately).
  unsigned readBit() {
    if (BitCursor >= NumBytes * 8) {
      ++BitCursor; // Past the end: overran() becomes observable.
      return OverrunBit;
    }
    unsigned Byte = Data[BitCursor >> 3];
    unsigned Bit = (Byte >> (7 - (BitCursor & 7))) & 1;
    ++BitCursor;
    return Bit;
  }

  /// Reads \p NumBits bits MSB-first.
  uint64_t readBits(unsigned NumBits) {
    assert(NumBits <= 64 && "bit count out of range");
    uint64_t Value = 0;
    for (unsigned I = 0; I != NumBits; ++I)
      Value = (Value << 1) | readBit();
    return Value;
  }

  /// Repositions the cursor to an absolute bit offset.
  void seekBit(size_t BitOffset) { BitCursor = BitOffset; }

  size_t bitPosition() const { return BitCursor; }
  bool overran() const { return BitCursor > NumBytes * 8; }
  size_t bitCapacity() const { return NumBytes * 8; }

  /// Sets the value returned for reads past the end (used by tests to
  /// exercise corrupt-stream handling).
  void setOverrunBit(unsigned Bit) { OverrunBit = Bit & 1; }

private:
  const uint8_t *Data;
  size_t NumBytes;
  size_t BitCursor = 0;
  unsigned OverrunBit = 0;
};

} // namespace vea

#endif // SQUASH_SUPPORT_BITSTREAM_H
