//===- support/ThreadPool.h - Small fixed-size worker pool -----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for the offline squash pipeline. The one
/// pattern the pipeline needs is an indexed parallel-for with deterministic
/// result placement: N independent tasks, each writing its own slot of a
/// pre-sized output vector, joined before the caller continues. Tasks must
/// not throw.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_THREADPOOL_H
#define SQUASH_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vea {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers (0 means one per hardware thread; the
  /// pool always has at least one worker).
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task for execution on some worker.
  void enqueue(std::function<void()> Task);

  /// Blocks until every enqueued task has finished.
  void wait();

  /// Blocks until every enqueued task has finished or \p Seconds elapse.
  /// Returns true when the pool drained, false on timeout (tasks keep
  /// running; callers that must not use their results anymore invalidate
  /// them on their side — see squash/Adaptive's generation counter).
  bool waitFor(double Seconds);

  /// Runs Body(0..NumTasks-1) across the pool's workers and waits for all
  /// of them. Indices are claimed atomically, so tasks may complete in any
  /// order — callers that need determinism index into pre-sized output
  /// storage.
  void parallelFor(size_t NumTasks, const std::function<void(size_t)> &Body);

  /// Clamped worker count for \p NumTasks independent tasks under the
  /// \p Requested setting (0 = hardware concurrency): never more threads
  /// than tasks, never zero.
  static unsigned effectiveThreads(unsigned Requested, size_t NumTasks);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable WakeWorker;
  std::condition_variable AllDone;
  size_t Running = 0;
  bool Stopping = false;
};

} // namespace vea

#endif // SQUASH_SUPPORT_THREADPOOL_H
