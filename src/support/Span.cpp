//===- support/Span.cpp - Causal span tracing + flight recorder -----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace vea;

uint64_t vea::monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// SpanRing
//===----------------------------------------------------------------------===//

static size_t roundUpPow2(size_t N) {
  size_t P = 16;
  while (P < N)
    P <<= 1;
  return P;
}

detail::SpanRing::SpanRing(size_t Capacity)
    : Cap(roundUpPow2(Capacity)), Mask(Cap - 1), Slots(new SpanSlot[Cap]) {}

// Pack the span into 13 words. Name/Category are static-lifetime literals,
// so storing the pointer bits is safe across threads.
static void packSpan(const Span &S, uint64_t W[detail::SpanWords]) {
  W[0] = S.Id;
  W[1] = S.Parent;
  W[2] = S.FlowIn;
  W[3] = S.FlowOut;
  W[4] = reinterpret_cast<uint64_t>(S.Name);
  W[5] = reinterpret_cast<uint64_t>(S.Category);
  W[6] = S.ThreadId;
  W[7] = S.StartNanos;
  W[8] = S.EndNanos;
  W[9] = S.StartCycles;
  W[10] = S.EndCycles;
  W[11] = S.ArgA;
  W[12] = S.ArgB;
}

static void unpackSpan(const uint64_t W[detail::SpanWords], Span &S) {
  S.Id = W[0];
  S.Parent = W[1];
  S.FlowIn = W[2];
  S.FlowOut = W[3];
  S.Name = reinterpret_cast<const char *>(W[4]);
  S.Category = reinterpret_cast<const char *>(W[5]);
  S.ThreadId = static_cast<uint32_t>(W[6]);
  S.StartNanos = W[7];
  S.EndNanos = W[8];
  S.StartCycles = W[9];
  S.EndCycles = W[10];
  S.ArgA = W[11];
  S.ArgB = W[12];
}

void detail::SpanRing::push(const Span &S) {
  uint64_t Words[SpanWords];
  packSpan(S, Words);
  uint64_t Index = Pushed.load(std::memory_order_relaxed);
  SpanSlot &T = Slots[Index & Mask];
  // Seqlock writer (single producer): mark in-progress (odd), fence so the
  // mark is visible before any payload word, fill, then publish (even).
  uint64_t Seq = T.Seq.load(std::memory_order_relaxed);
  T.Seq.store(Seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t I = 0; I < SpanWords; ++I)
    T.Words[I].store(Words[I], std::memory_order_relaxed);
  T.Seq.store(Seq + 2, std::memory_order_release);
  Pushed.store(Index + 1, std::memory_order_release);
}

bool detail::SpanRing::readSlot(size_t Index, Span &Out) const {
  const SpanSlot &T = Slots[Index & Mask];
  uint64_t S1 = T.Seq.load(std::memory_order_acquire);
  if (S1 == 0 || (S1 & 1))
    return false;
  uint64_t Words[SpanWords];
  for (size_t I = 0; I < SpanWords; ++I)
    Words[I] = T.Words[I].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (T.Seq.load(std::memory_order_relaxed) != S1)
    return false; // Torn: the producer lapped us mid-read. Caller skips.
  unpackSpan(Words, Out);
  return true;
}

//===----------------------------------------------------------------------===//
// SpanTracer
//===----------------------------------------------------------------------===//

std::atomic<bool> SpanTracer::Enabled{false};

struct SpanTracer::ThreadState {
  detail::SpanRing *Ring = nullptr;
  uint64_t Epoch = ~uint64_t{0};
  uint32_t Tid = 0;
  std::vector<std::pair<uint64_t, const char *>> Open;
};

SpanTracer &SpanTracer::instance() {
  static SpanTracer T;
  return T;
}

SpanTracer::ThreadState &SpanTracer::threadState() {
  static thread_local ThreadState TS;
  return TS;
}

void SpanTracer::setRingCapacity(size_t Capacity) {
  RingCapacity.store(Capacity < 16 ? 16 : Capacity, std::memory_order_relaxed);
}

uint64_t SpanTracer::currentSpan() const {
  const ThreadState &TS = const_cast<SpanTracer *>(this)->threadState();
  return TS.Open.empty() ? 0 : TS.Open.back().first;
}

std::vector<std::pair<uint64_t, const char *>> SpanTracer::liveStack() const {
  return const_cast<SpanTracer *>(this)->threadState().Open;
}

void SpanTracer::pushOpen(uint64_t Id, const char *Name) {
  threadState().Open.emplace_back(Id, Name);
}

void SpanTracer::popOpen() {
  ThreadState &TS = threadState();
  if (!TS.Open.empty())
    TS.Open.pop_back();
}

void SpanTracer::emit(const Span &S) {
  ThreadState &TS = threadState();
  uint64_t Epoch = RegistryEpoch.load(std::memory_order_acquire);
  if (!TS.Ring || TS.Epoch != Epoch) {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    if (TS.Tid == 0)
      TS.Tid = NextThreadId.fetch_add(1, std::memory_order_relaxed) + 1;
    Rings.push_back(std::make_unique<detail::SpanRing>(
        RingCapacity.load(std::memory_order_relaxed)));
    Rings.back()->ThreadId = TS.Tid;
    TS.Ring = Rings.back().get();
    TS.Epoch = RegistryEpoch.load(std::memory_order_relaxed);
  }
  Span Copy = S;
  Copy.ThreadId = TS.Tid;
  TS.Ring->push(Copy);
}

std::vector<Span> SpanTracer::snapshot() const {
  std::vector<Span> Out;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &R : Rings) {
    uint64_t P = R->pushed();
    uint64_t First = P > R->capacity() ? P - R->capacity() : 0;
    for (uint64_t I = First; I < P; ++I) {
      Span S;
      if (R->readSlot(I, S))
        Out.push_back(S);
    }
  }
  std::sort(Out.begin(), Out.end(), [](const Span &A, const Span &B) {
    return A.StartNanos < B.StartNanos;
  });
  return Out;
}

uint64_t SpanTracer::totalEmitted() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  uint64_t N = 0;
  for (const auto &R : Rings)
    N += R->pushed();
  return N;
}

uint64_t SpanTracer::totalDropped() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  uint64_t N = 0;
  for (const auto &R : Rings)
    N += R->dropped();
  return N;
}

void SpanTracer::reset() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Rings.clear();
  RegistryEpoch.fetch_add(1, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// SpanScope
//===----------------------------------------------------------------------===//

SpanScope::SpanScope(const char *Name, const char *Category,
                     uint64_t StartCycles) {
  if (!SpanTracer::enabled())
    return;
  SpanTracer &T = SpanTracer::instance();
  S.Id = T.nextId();
  S.Parent = T.currentSpan();
  S.Name = Name;
  S.Category = Category;
  S.StartNanos = monotonicNanos();
  S.StartCycles = StartCycles;
  S.EndCycles = StartCycles;
  T.pushOpen(S.Id, Name);
  Active = true;
}

SpanScope::~SpanScope() {
  if (!Active)
    return;
  S.EndNanos = monotonicNanos();
  if (S.EndCycles < S.StartCycles)
    S.EndCycles = S.StartCycles;
  SpanTracer &T = SpanTracer::instance();
  T.popOpen();
  T.emit(S);
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

std::atomic<bool> FlightRecorder::Armed{false};

FlightRecorder &FlightRecorder::instance() {
  static FlightRecorder R;
  return R;
}

void FlightRecorder::arm(size_t Triggers, size_t Events) {
  std::lock_guard<std::mutex> Lock(Mutex);
  MaxTriggers = Triggers < 1 ? 1 : Triggers;
  MaxEvents = Events < 1 ? 1 : Events;
  Armed.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disarm() { Armed.store(false, std::memory_order_relaxed); }

void FlightRecorder::record(const char *Source, std::string Detail) {
  FlightTrigger T;
  T.Nanos = monotonicNanos();
  T.Source = Source;
  T.Detail = std::move(Detail);
  for (const auto &Open : SpanTracer::instance().liveStack())
    T.LiveSpans.emplace_back(Open.first, std::string(Open.second));
  std::lock_guard<std::mutex> Lock(Mutex);
  T.Seq = NextSeq++;
  if (Triggers.size() >= MaxTriggers) {
    Triggers.erase(Triggers.begin());
    ++DroppedTriggers;
  }
  Triggers.push_back(std::move(T));
}

void FlightRecorder::noteStatus(const char *CodeName,
                                const std::string &Message) {
  if (!armed())
    return;
  record("status", std::string(CodeName) + ": " + Message);
}

void FlightRecorder::noteFault(const char *Source,
                               const std::string &Description) {
  if (!armed())
    return;
  record(Source, Description);
}

void FlightRecorder::noteEvent(const char *Kind, uint64_t Region,
                               uint64_t Addr, uint64_t Cycle) {
  if (!armed())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Events.size() >= MaxEvents)
    Events.erase(Events.begin());
  Events.push_back(RecordedEvent{Kind, Region, Addr, Cycle});
}

uint64_t FlightRecorder::triggerCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return NextSeq;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Triggers.clear();
  Events.clear();
  NextSeq = 0;
  DroppedTriggers = 0;
}

static void jsonEscapeTo(std::string &Out, const std::string &In) {
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

std::string FlightRecorder::dumpJson() const {
  // Copy state under the lock, render outside it (snapshot() takes the
  // tracer registry mutex; keep lock scopes disjoint).
  std::vector<FlightTrigger> Trig;
  std::vector<RecordedEvent> Evs;
  uint64_t Dropped;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Trig = Triggers;
    Evs = Events;
    Dropped = DroppedTriggers;
  }
  std::vector<Span> Spans = SpanTracer::instance().snapshot();

  std::string J = "{\"triggers\":[";
  char Buf[256];
  for (size_t I = 0; I < Trig.size(); ++I) {
    const FlightTrigger &T = Trig[I];
    if (I)
      J += ',';
    std::snprintf(Buf, sizeof(Buf), "{\"seq\":%llu,\"nanos\":%llu,\"source\":\"",
                  (unsigned long long)T.Seq, (unsigned long long)T.Nanos);
    J += Buf;
    jsonEscapeTo(J, T.Source);
    J += "\",\"detail\":\"";
    jsonEscapeTo(J, T.Detail);
    J += "\",\"live_spans\":[";
    for (size_t K = 0; K < T.LiveSpans.size(); ++K) {
      if (K)
        J += ',';
      std::snprintf(Buf, sizeof(Buf), "{\"id\":%llu,\"name\":\"",
                    (unsigned long long)T.LiveSpans[K].first);
      J += Buf;
      jsonEscapeTo(J, T.LiveSpans[K].second);
      J += "\"}";
    }
    J += "]}";
  }
  J += "],\"events\":[";
  for (size_t I = 0; I < Evs.size(); ++I) {
    if (I)
      J += ',';
    J += "{\"kind\":\"";
    jsonEscapeTo(J, Evs[I].Kind);
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"region\":%llu,\"addr\":%llu,\"cycle\":%llu}",
                  (unsigned long long)Evs[I].Region,
                  (unsigned long long)Evs[I].Addr,
                  (unsigned long long)Evs[I].Cycle);
    J += Buf;
  }
  J += "],\"spans\":[";
  for (size_t I = 0; I < Spans.size(); ++I) {
    const Span &S = Spans[I];
    if (I)
      J += ',';
    J += "{\"id\":";
    std::snprintf(Buf, sizeof(Buf),
                  "%llu,\"parent\":%llu,\"name\":\"", (unsigned long long)S.Id,
                  (unsigned long long)S.Parent);
    J += Buf;
    jsonEscapeTo(J, S.Name ? S.Name : "");
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"tid\":%u,\"start_ns\":%llu,\"end_ns\":%llu,"
                  "\"start_cycles\":%llu,\"end_cycles\":%llu,\"flow_in\":%llu,"
                  "\"flow_out\":%llu,\"arg_a\":%llu,\"arg_b\":%llu}",
                  S.ThreadId, (unsigned long long)S.StartNanos,
                  (unsigned long long)S.EndNanos,
                  (unsigned long long)S.StartCycles,
                  (unsigned long long)S.EndCycles,
                  (unsigned long long)S.FlowIn, (unsigned long long)S.FlowOut,
                  (unsigned long long)S.ArgA, (unsigned long long)S.ArgB);
    J += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "],\"dropped_triggers\":%llu}",
                (unsigned long long)Dropped);
  J += Buf;
  return J;
}
