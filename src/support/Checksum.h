//===- support/Checksum.h - CRC-32 integrity checking ----------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) over byte spans.
/// Used to seal the immutable parts of a squashed image — the code prefix,
/// the function offset table, and the compressed blob — so the runtime can
/// refuse to execute, or decline to decode, corrupted bits instead of
/// materializing them as machine code.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_CHECKSUM_H
#define SQUASH_SUPPORT_CHECKSUM_H

#include <cstddef>
#include <cstdint>

namespace vea {

/// Continues a CRC-32 over \p Len bytes at \p Data. Start with Crc = 0;
/// the pre/post conditioning is handled internally, so crc32(B, crc32(A))
/// over split spans equals crc32(A+B) only when chained via this parameter.
uint32_t crc32(const uint8_t *Data, size_t Len, uint32_t Crc = 0);

} // namespace vea

#endif // SQUASH_SUPPORT_CHECKSUM_H
