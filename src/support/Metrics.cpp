//===- support/Metrics.cpp - Named counter/gauge registry -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <cmath>
#include <cstdio>

using namespace vea;

MetricsRegistry::Entry &MetricsRegistry::entry(const std::string &Name) {
  auto It = Index.find(Name);
  if (It != Index.end())
    return Entries[It->second];
  Index.emplace(Name, Entries.size());
  Entries.push_back(Entry{Name, true, 0, 0.0});
  return Entries.back();
}

const MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? nullptr : &Entries[It->second];
}

void MetricsRegistry::setCounter(const std::string &Name, uint64_t Value) {
  Entry &E = entry(Name);
  E.IsCounter = true;
  E.U64 = Value;
}

void MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  Entry &E = entry(Name);
  E.IsCounter = true;
  E.U64 += Delta;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  Entry &E = entry(Name);
  E.IsCounter = false;
  E.Dbl = Value;
}

bool MetricsRegistry::has(const std::string &Name) const {
  return find(Name) != nullptr;
}

uint64_t MetricsRegistry::counter(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->IsCounter ? E->U64 : 0;
}

double MetricsRegistry::gauge(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && !E->IsCounter ? E->Dbl : 0.0;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const Entry &E : Entries)
    Out.push_back(E.Name);
  return Out;
}

std::string vea::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const Entry &E : Entries) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(E.Name) + "\":";
    char Buf[48];
    if (E.IsCounter) {
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(E.U64));
    } else {
      double V = std::isfinite(E.Dbl) ? E.Dbl : 0.0;
      std::snprintf(Buf, sizeof(Buf), "%.9g", V);
      // %g may print a bare integer; that is still valid JSON.
    }
    Out += Buf;
  }
  Out += "}";
  return Out;
}
