//===- support/Metrics.cpp - Named counter/gauge/histogram registry -------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace vea;

bool vea::validMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (char C : Name) {
    const unsigned char U = static_cast<unsigned char>(C);
    // Control characters would corrupt both exposition formats (newlines
    // split samples, \0 truncates); quotes and backslashes would need
    // escaping the Prometheus *name* grammar does not allow at all.
    if (U < 0x20 || U == 0x7f || C == '"' || C == '\\')
      return false;
  }
  return true;
}

MetricsRegistry::Entry *MetricsRegistry::entry(const std::string &Name,
                                               Kind K) {
  // Reject rather than sanitize: a sanitized name would silently collide
  // with a legitimate one ("a\nb" and "a_b" must not share storage). The
  // setters return false, the same contract as a kind conflict.
  if (!validMetricName(Name))
    return nullptr;
  auto It = Index.find(Name);
  if (It != Index.end()) {
    Entry &E = Entries[It->second];
    // The kind is fixed at creation: a counter never becomes a gauge (or a
    // histogram) because some later caller reused the name. Surfacing the
    // conflict beats silently reinterpreting the shared storage.
    assert(E.K == K && "metric re-registered with a different kind");
    return E.K == K ? &E : nullptr;
  }
  Index.emplace(Name, Entries.size());
  Entries.push_back(Entry{Name, K, 0, 0.0, nullptr});
  return &Entries.back();
}

const MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? nullptr : &Entries[It->second];
}

bool MetricsRegistry::setCounter(const std::string &Name, uint64_t Value) {
  Entry *E = entry(Name, Kind::Counter);
  if (!E)
    return false;
  E->U64 = Value;
  return true;
}

bool MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  Entry *E = entry(Name, Kind::Counter);
  if (!E)
    return false;
  E->U64 += Delta;
  return true;
}

bool MetricsRegistry::setGauge(const std::string &Name, double Value) {
  Entry *E = entry(Name, Kind::Gauge);
  if (!E)
    return false;
  E->Dbl = Value;
  return true;
}

bool MetricsRegistry::setHistogram(const std::string &Name,
                                   const Histogram &H) {
  Entry *E = entry(Name, Kind::Histogram);
  if (!E)
    return false;
  if (E->Hist)
    *E->Hist = H;
  else
    E->Hist = std::make_unique<Histogram>(H);
  return true;
}

bool MetricsRegistry::has(const std::string &Name) const {
  return find(Name) != nullptr;
}

MetricsRegistry::Kind MetricsRegistry::kind(const std::string &Name) const {
  const Entry *E = find(Name);
  return E ? E->K : Kind::Counter;
}

uint64_t MetricsRegistry::counter(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->K == Kind::Counter ? E->U64 : 0;
}

double MetricsRegistry::gauge(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->K == Kind::Gauge ? E->Dbl : 0.0;
}

const Histogram *MetricsRegistry::histogram(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->K == Kind::Histogram ? E->Hist.get() : nullptr;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const Entry &E : Entries)
    Out.push_back(E.Name);
  return Out;
}

std::string vea::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string vea::formatGauge(double V) {
  if (!std::isfinite(V))
    V = 0.0;
  char Buf[48];
  // %.17g round-trips every double; %g may print a bare integer, which is
  // still a valid JSON number and a valid Prometheus sample value.
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

std::string vea::prometheusName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const Entry &E : Entries) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(E.Name) + "\":";
    switch (E.K) {
    case Kind::Counter: {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(E.U64));
      Out += Buf;
      break;
    }
    case Kind::Gauge:
      Out += formatGauge(E.Dbl);
      break;
    case Kind::Histogram:
      Out += E.Hist->toJson();
      break;
    }
  }
  Out += "}";
  return Out;
}

/// Escapes a HELP docstring per the exposition format: backslash and
/// newline are the only characters the format requires escaping.
static std::string helpEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

std::string MetricsRegistry::toPrometheus() const {
  std::string Out;
  char Buf[96];
  for (const Entry &E : Entries) {
    const std::string N = prometheusName(E.Name);
    // Every metric gets a HELP line before its TYPE line; the registry
    // name (dots intact) is the docstring, so the mangled Prometheus name
    // stays traceable to its JSON twin.
    Out += "# HELP " + N + " squash metric " + helpEscape(E.Name) + "\n";
    switch (E.K) {
    case Kind::Counter:
      std::snprintf(Buf, sizeof(Buf), " %llu\n",
                    static_cast<unsigned long long>(E.U64));
      Out += "# TYPE " + N + " counter\n" + N + Buf;
      break;
    case Kind::Gauge:
      Out += "# TYPE " + N + " gauge\n" + N + " " + formatGauge(E.Dbl) +
             "\n";
      break;
    case Kind::Histogram: {
      const Histogram &H = *E.Hist;
      Out += "# TYPE " + N + " histogram\n";
      uint64_t Cum = 0;
      for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
        if (!H.bucketCount(I))
          continue;
        Cum += H.bucketCount(I);
        std::snprintf(Buf, sizeof(Buf), "_bucket{le=\"%llu\"} %llu\n",
                      static_cast<unsigned long long>(
                          Histogram::bucketUpperBound(I)),
                      static_cast<unsigned long long>(Cum));
        Out += N + Buf;
      }
      std::snprintf(Buf, sizeof(Buf), "_bucket{le=\"+Inf\"} %llu\n",
                    static_cast<unsigned long long>(H.count()));
      Out += N + Buf;
      std::snprintf(Buf, sizeof(Buf), "_sum %llu\n",
                    static_cast<unsigned long long>(H.sum()));
      Out += N + Buf;
      std::snprintf(Buf, sizeof(Buf), "_count %llu\n",
                    static_cast<unsigned long long>(H.count()));
      Out += N + Buf;
      break;
    }
    }
  }
  return Out;
}
