//===- support/ThreadPool.cpp - Small fixed-size worker pool --------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

using namespace vea;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeWorker.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
  }
  WakeWorker.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Tasks.empty() && Running == 0; });
}

bool ThreadPool::waitFor(double Seconds) {
  std::unique_lock<std::mutex> Lock(Mutex);
  return AllDone.wait_for(
      Lock, std::chrono::duration<double>(std::max(Seconds, 0.0)),
      [this] { return Tasks.empty() && Running == 0; });
}

void ThreadPool::parallelFor(size_t NumTasks,
                             const std::function<void(size_t)> &Body) {
  if (NumTasks == 0)
    return;
  // One claim-loop task per worker instead of one task per index: N may be
  // much larger than the pool, and indices stay cheap to hand out.
  auto Next = std::make_shared<std::atomic<size_t>>(0);
  size_t Lanes = std::min<size_t>(Workers.size(), NumTasks);
  for (size_t L = 0; L != Lanes; ++L)
    enqueue([Next, NumTasks, &Body] {
      for (size_t I = (*Next)++; I < NumTasks; I = (*Next)++)
        Body(I);
    });
  wait();
}

unsigned ThreadPool::effectiveThreads(unsigned Requested, size_t NumTasks) {
  unsigned N =
      Requested ? Requested : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::max<size_t>(1, std::min<size_t>(N, NumTasks)));
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorker.wait(Lock, [this] { return Stopping || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Stopping and drained.
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++Running;
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Running;
      if (Tasks.empty() && Running == 0)
        AllDone.notify_all();
    }
  }
}
