//===- support/Checksum.cpp - CRC-32 integrity checking -------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"

#include <array>

using namespace vea;

namespace {

std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

} // namespace

uint32_t vea::crc32(const uint8_t *Data, size_t Len, uint32_t Crc) {
  static const std::array<uint32_t, 256> Table = makeTable();
  uint32_t C = Crc ^ 0xFFFFFFFFu;
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}
