//===- support/Random.h - Deterministic PRNG ------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xorshift64*) used for synthetic workload
/// inputs, random-program generation, and property tests. Determinism across
/// platforms matters more here than statistical quality.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_RANDOM_H
#define SQUASH_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace vea {

/// xorshift64* generator with splittable seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) : State(Seed | 1) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Uniform value in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

  /// Derives an independent generator (for reproducible sub-streams).
  Rng split() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

  /// Generates \p N pseudo-random bytes.
  std::vector<uint8_t> bytes(size_t N) {
    std::vector<uint8_t> Out(N);
    for (auto &B : Out)
      B = static_cast<uint8_t>(next());
    return Out;
  }

private:
  uint64_t State;
};

} // namespace vea

#endif // SQUASH_SUPPORT_RANDOM_H
