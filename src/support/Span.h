//===- support/Span.h - Causal span tracing + flight recorder --*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Causal span tracing for every layer of the squash stack, and the
/// always-on crash/fault flight recorder built on top of it.
///
/// A Span is a named interval with a parent (same-thread causality), an
/// optional flow id (cross-thread causality: prefetch worker, re-squash
/// ThreadPool), and dual timestamps — wall-clock nanoseconds for host-side
/// work and simulated Machine cycles for guest-side work. Spans are pushed
/// into per-thread single-producer rings whose slots are seqlocks: the
/// writer never blocks, concurrent snapshot readers detect and skip torn
/// slots, and every access is an atomic load/store so the scheme is clean
/// under ThreadSanitizer.
///
/// Instrumentation sites guard on SpanTracer::enabled(), a single relaxed
/// atomic load, so the compiled-in-but-disabled cost is one predictable
/// branch per site (the acceptance bar is <= 2% on the hot decode loop).
///
/// The FlightRecorder is independent of tracer enablement: when armed it
/// snapshots the calling thread's *live* span stack plus recent runtime
/// events each time a non-OK Status is minted, a Machine faults, or a
/// FaultInjector fault fires — the spans covering the failure are still
/// open (unemitted) at that moment, so the ring alone cannot name them.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_SPAN_H
#define SQUASH_SUPPORT_SPAN_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vea {

/// One completed interval of work. Name and Category must be pointers to
/// storage with static lifetime (string literals): spans cross threads and
/// outlive the scopes that emit them.
struct Span {
  uint64_t Id = 0;        ///< Unique nonzero id.
  uint64_t Parent = 0;    ///< Enclosing span on the same thread (0 = root).
  uint64_t FlowIn = 0;    ///< Incoming cross-thread flow id (0 = none).
  uint64_t FlowOut = 0;   ///< Outgoing cross-thread flow id (0 = none).
  const char *Name = "";  ///< Static-lifetime site name, e.g. "trap.decompress".
  const char *Category = ""; ///< Static-lifetime group, e.g. "runtime".
  uint32_t ThreadId = 0;  ///< Small dense id of the emitting thread.
  uint64_t StartNanos = 0;
  uint64_t EndNanos = 0;
  uint64_t StartCycles = 0; ///< Simulated cycles at entry (0 if host-only).
  uint64_t EndCycles = 0;   ///< Simulated cycles at exit.
  uint64_t ArgA = 0;      ///< Site-defined payload (region, counts, ...).
  uint64_t ArgB = 0;
};

/// Monotonic wall clock in nanoseconds (steady_clock).
uint64_t monotonicNanos();

namespace detail {

/// Number of 64-bit payload words a Span packs into a ring slot.
constexpr size_t SpanWords = 13;

/// A seqlock-protected slot. The single producer bumps Seq to odd, fills
/// the payload, then publishes an even Seq; readers retry/skip on odd or
/// changed Seq. All words are atomics accessed relaxed inside the
/// fence-based protocol, so TSan sees no data race and torn reads are
/// rejected by the Seq recheck rather than silently returned.
struct SpanSlot {
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> Words[SpanWords];
};

/// Fixed-capacity single-producer span ring owned by the tracer (so it
/// survives the producing thread). Capacity is rounded up to a power of
/// two; once full the oldest slots are overwritten and counted as dropped.
class SpanRing {
public:
  explicit SpanRing(size_t Capacity);

  void push(const Span &S);                ///< Producer thread only.
  bool readSlot(size_t Index, Span &Out) const; ///< Any thread; false = torn.

  size_t capacity() const { return Cap; }
  uint64_t pushed() const { return Pushed.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    uint64_t P = pushed();
    return P > Cap ? P - Cap : 0;
  }

  uint32_t ThreadId = 0;

private:
  size_t Cap;
  size_t Mask;
  std::unique_ptr<SpanSlot[]> Slots;
  std::atomic<uint64_t> Pushed{0};
};

} // namespace detail

/// Process-wide tracer: owns every thread's ring, allocates span/flow ids,
/// and tracks the per-thread stack of open spans (used for parenting and
/// for flight-recorder snapshots of in-flight work).
class SpanTracer {
public:
  static SpanTracer &instance();

  /// The global fast-path gate; a single relaxed load per site.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

  /// Capacity (per thread ring) for rings created after this call. Existing
  /// rings keep their size. Rounded up to a power of two, min 16.
  void setRingCapacity(size_t Capacity);

  /// Allocates a fresh span or flow id (never 0).
  uint64_t nextId() { return NextId.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Id of the innermost open span on this thread (0 = none).
  uint64_t currentSpan() const;

  /// Names + ids of this thread's open spans, outermost first. Used by the
  /// flight recorder to capture in-flight (not-yet-emitted) work.
  std::vector<std::pair<uint64_t, const char *>> liveStack() const;

  /// Pushes/pops the open-span stack; called by SpanScope.
  void pushOpen(uint64_t Id, const char *Name);
  void popOpen();

  /// Emits a completed span into the calling thread's ring (creating and
  /// registering the ring on first use).
  void emit(const Span &S);

  /// Non-destructive merge of every ring, torn slots skipped, sorted by
  /// StartNanos. Safe to call while producers are pushing.
  std::vector<Span> snapshot() const;

  /// Total spans pushed / overwritten-before-read across all rings.
  uint64_t totalEmitted() const;
  uint64_t totalDropped() const;

  /// Drops all rings and resets counters (tests only; no producer may be
  /// mid-push). Thread-local ring handles are invalidated lazily via a
  /// registry epoch, so reuse from surviving threads is safe.
  void reset();

private:
  SpanTracer() = default;

  struct ThreadState;
  ThreadState &threadState();

  static std::atomic<bool> Enabled;

  std::atomic<uint64_t> NextId{0};
  mutable std::mutex RegistryMutex;
  std::vector<std::unique_ptr<detail::SpanRing>> Rings;
  std::atomic<uint64_t> RegistryEpoch{0};
  std::atomic<uint64_t> RingCapacity{1024};
  std::atomic<uint32_t> NextThreadId{0};
};

/// RAII span. Captures enablement at construction: a scope created while
/// tracing is off stays inert even if tracing flips on mid-flight.
class SpanScope {
public:
  SpanScope(const char *Name, const char *Category, uint64_t StartCycles = 0);
  ~SpanScope();

  SpanScope(const SpanScope &) = delete;
  SpanScope &operator=(const SpanScope &) = delete;

  bool active() const { return Active; }
  uint64_t id() const { return S.Id; }

  void setFlow(uint64_t In, uint64_t Out) {
    S.FlowIn = In;
    S.FlowOut = Out;
  }
  void setArgs(uint64_t A, uint64_t B) {
    S.ArgA = A;
    S.ArgB = B;
  }
  void setEndCycles(uint64_t Cycles) { S.EndCycles = Cycles; }

private:
  Span S;
  bool Active = false;
};

/// A single flight-recorder trigger: what fired, plus the calling thread's
/// open-span stack at that instant.
struct FlightTrigger {
  uint64_t Seq = 0;
  uint64_t Nanos = 0;
  std::string Source;  ///< "status" | "machine" | "fault-injector".
  std::string Detail;  ///< Code name / fault description / message.
  std::vector<std::pair<uint64_t, std::string>> LiveSpans; ///< Outermost first.
};

/// Always-on postmortem recorder. Arm it before running suspect work; every
/// non-OK Status, Machine fault, or injected fault then snapshots the live
/// span stack and the last few runtime events into a bounded trigger ring,
/// and dumpJson() renders triggers + a span-ring snapshot as one document.
class FlightRecorder {
public:
  static FlightRecorder &instance();

  static bool armed() { return Armed.load(std::memory_order_relaxed); }
  void arm(size_t MaxTriggers = 64, size_t MaxEvents = 256);
  void disarm();

  /// Trigger hooks (no-ops unless armed).
  void noteStatus(const char *CodeName, const std::string &Message);
  void noteFault(const char *Source, const std::string &Description);

  /// Background feed: recent runtime events (kind/region/addr/cycle) shown
  /// alongside triggers in the dump. No-op unless armed.
  void noteEvent(const char *Kind, uint64_t Region, uint64_t Addr,
                 uint64_t Cycle);

  uint64_t triggerCount() const;

  /// Renders {"triggers":[...],"events":[...],"spans":[...]}; "spans" is a
  /// tracer snapshot taken at dump time.
  std::string dumpJson() const;

  void clear();

private:
  FlightRecorder() = default;

  void record(const char *Source, std::string Detail);

  struct RecordedEvent {
    std::string Kind;
    uint64_t Region, Addr, Cycle;
  };

  static std::atomic<bool> Armed;

  mutable std::mutex Mutex;
  std::vector<FlightTrigger> Triggers; ///< Bounded ring, newest kept.
  std::vector<RecordedEvent> Events;   ///< Bounded ring, newest kept.
  size_t MaxTriggers = 64;
  size_t MaxEvents = 256;
  uint64_t NextSeq = 0;
  uint64_t DroppedTriggers = 0;
};

} // namespace vea

#endif // SQUASH_SUPPORT_SPAN_H
