//===- support/Error.cpp - Error reporting helpers ------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace vea;

void vea::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "squash fatal error: %s\n", Message.c_str());
  std::abort();
}
