//===- support/Status.h - Recoverable error taxonomy -----------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable error taxonomy for the squash pipeline and runtime:
/// Status (code + message + context chain) and Expected<T> (value or
/// Status). Library code reports failures by returning these; only CLI
/// drivers, benches, and tests are entitled to die on them, which they do
/// explicitly through Expected<T>::take() / Status::check().
///
/// The design is deliberately tiny — no exception machinery, no allocation
/// beyond the message string — because the runtime half of squash services
/// decompression traps on a simulated hot path and must stay cheap when
/// nothing is wrong (a successful Status is two stores).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SUPPORT_STATUS_H
#define SQUASH_SUPPORT_STATUS_H

#include "support/Error.h"

#include <optional>
#include <string>
#include <utility>

namespace vea {

/// Failure categories. Codes classify *what kind of thing went wrong* so
/// callers can choose a policy (retry, degrade, surface) without parsing
/// messages.
enum class StatusCode : uint8_t {
  Ok = 0,
  InvalidArgument,   ///< Caller passed inconsistent inputs (sizes, ranges).
  MalformedProgram,  ///< A Program failed structural verification.
  MalformedImage,    ///< An Image/layout is internally inconsistent.
  CorruptBlob,       ///< Compressed payload failed integrity checking.
  CorruptOffsetTable,///< Function offset table entry invalid.
  LayoutError,       ///< Address/displacement could not be encoded.
  EncodingError,     ///< Compression-side encoding failure.
  ResourceExhausted, ///< A fixed-capacity runtime structure overflowed.
  DeadlineExceeded,  ///< Background work overran its watchdog timeout.
  RuntimeFault,      ///< Simulated execution faulted.
  InternalError,     ///< Invariant violation inside the library.
};

/// Human-readable name of \p Code (stable, used in messages and tests).
const char *statusCodeName(StatusCode Code);

/// A success-or-failure carrier. Failure holds a code and a message;
/// context() prepends breadcrumbs as an error travels up the pipeline, so
/// the final message reads outermost-first, e.g.
/// "squash: rewrite: branch displacement out of range".
class [[nodiscard]] Status {
public:
  Status() = default; // Success.

  static Status success() { return Status(); }

  /// Mints an error status. Out of line so the flight recorder (if armed)
  /// can snapshot the live span stack at the moment of failure.
  static Status error(StatusCode Code, std::string Message);

  bool ok() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Prepends \p What to the context chain and returns the status.
  Status &context(const std::string &What) {
    if (!ok())
      Message = What + ": " + Message;
    return *this;
  }

  /// Renders "<code-name>: <message>" for logs and fault strings.
  std::string toString() const;

  /// Dies via reportFatalError if this is an error. For CLI drivers and
  /// tools where an unexpected failure should be loud and terminal.
  void check() const {
    if (!ok())
      reportFatalError(toString());
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Message;
};

/// A value-or-Status carrier: the return type of every fallible library
/// entry point in the squash pipeline.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status S) : Err(std::move(S)) {
    // An Ok status carries no value; normalize to an internal error so the
    // invalid state is still observable rather than UB.
    if (Err.ok())
      Err = Status::error(StatusCode::InternalError,
                          "Expected constructed from an Ok status");
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status &status() const {
    static const Status OkStatus;
    return Value ? OkStatus : Err;
  }

  T &get() {
    if (!Value)
      reportFatalError("Expected::get on error: " + Err.toString());
    return *Value;
  }
  const T &get() const {
    if (!Value)
      reportFatalError("Expected::get on error: " + Err.toString());
    return *Value;
  }

  /// Moves the value out; dies loudly if this holds an error. The "I am a
  /// CLI driver / test and failure here is fatal" accessor.
  T take() {
    if (!Value)
      reportFatalError("Expected::take on error: " + Err.toString());
    return std::move(*Value);
  }

  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }

  /// Prepends context to the carried error (no-op on success).
  Expected &context(const std::string &What) {
    if (!Value)
      Err.context(What);
    return *this;
  }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace vea

#endif // SQUASH_SUPPORT_STATUS_H
