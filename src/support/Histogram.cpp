//===- support/Histogram.cpp - Log-bucketed latency histogram -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace vea;

void Histogram::merge(const Histogram &Other) {
  if (Other.Count_ == 0)
    return;
  for (unsigned I = 0; I != NumBuckets; ++I)
    Counts[I] += Other.Counts[I];
  if (Count_ == 0 || Other.Min_ < Min_)
    Min_ = Other.Min_;
  if (Count_ == 0 || Other.Max_ > Max_)
    Max_ = Other.Max_;
  Count_ += Other.Count_;
  Sum_ += Other.Sum_;
}

void Histogram::reset() {
  Counts.fill(0);
  Count_ = Sum_ = Min_ = Max_ = 0;
}

uint64_t Histogram::percentile(double P) const {
  if (Count_ == 0)
    return 0;
  P = std::clamp(P, 0.0, 100.0);
  // Rank of the requested sample, at least 1 so p0 reports the minimum.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(P / 100.0 * static_cast<double>(Count_)));
  Rank = std::max<uint64_t>(Rank, 1);
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cum += Counts[I];
    if (Cum >= Rank)
      return std::clamp(bucketLowerBound(I), min(), max());
  }
  return max();
}

std::string Histogram::toJson() const {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
                "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"buckets\":[",
                static_cast<unsigned long long>(Count_),
                static_cast<unsigned long long>(Sum_),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max()),
                static_cast<unsigned long long>(percentile(50)),
                static_cast<unsigned long long>(percentile(90)),
                static_cast<unsigned long long>(percentile(99)));
  std::string Out = Buf;
  bool First = true;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    if (!Counts[I])
      continue;
    if (!First)
      Out += ',';
    First = false;
    std::snprintf(Buf, sizeof(Buf), "[%llu,%llu]",
                  static_cast<unsigned long long>(bucketLowerBound(I)),
                  static_cast<unsigned long long>(Counts[I]));
    Out += Buf;
  }
  Out += "]}";
  return Out;
}
