//===- bench/stat_drift.cpp - Train-on-A / run-on-B drift matrix ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Quantifies the paper's §4.3 robustness claim with the DriftMonitor.
// Every workload is squashed under its training profile (input A), then
// run twice under a drift monitor: once on A again (matched — the drift
// score should be near zero) and once on the timing input B (cross — the
// deliberately profile-cold codec modes show up as drift). The cross
// monitor's live heat is then merged back into the training profile and
// the workload re-squashed; rerunning on B measures how many charged trap
// cycles the profile-feedback loop recovers. One metrics row per workload
// goes to BENCH_drift.json.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "sim/ProfileIO.h"
#include "squash/DriftMonitor.h"

using namespace bench;
using namespace squash;
using namespace vea;

namespace {

/// Squashes, runs on \p Input under a monitor, and returns the run.
SquashedRun monitoredRun(const SquashedProgram &SP,
                         const std::vector<uint8_t> &Input,
                         DriftMonitor &Mon) {
  return runSquashed(SP, Input, 2'000'000'000ull, 0, &Mon);
}

} // namespace

int main() {
  std::printf("== Drift: train on A, run on B, re-squash on merged ==\n\n");
  auto Suite = prepareSuite();
  std::printf("%-10s %10s %10s %8s %14s %14s %10s\n", "program", "sameScore",
              "crossScore", "overlap", "trapCycBefore", "trapCycAfter",
              "recovered");

  std::vector<BenchRow> Rows;
  for (auto &P : Suite) {
    Options Opts;
    Opts.Theta = ThetaMid;
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();

    // Matched run: same input the profile was trained on.
    DriftMonitor SameMon(SR.SP, P.Prof);
    SquashedRun SameRun = monitoredRun(SR.SP, P.W.ProfilingInput, SameMon);
    DriftReport Same = SameMon.report();

    // Cross run: the timing input, which exercises profile-cold paths.
    DriftMonitor CrossMon(SR.SP, P.Prof);
    SquashedRun CrossRun = monitoredRun(SR.SP, P.W.TimingInput, CrossMon);
    DriftReport Cross = CrossMon.report();
    const uint64_t TrapCyclesBefore = CrossRun.Runtime.TrapCycles.sum();

    // Profile feedback: weight the live heat so its instruction total
    // matches the training profile's — enough to flip every monitored
    // region decisively hot, without inflating the merged total (and with
    // it the θ cold budget) past recognition.
    const Profile LiveUnit = CrossMon.liveProfile(1.0);
    const double Weight =
        static_cast<double>(std::max<uint64_t>(P.Prof.TotalInstructions, 1)) /
        static_cast<double>(
            std::max<uint64_t>(LiveUnit.TotalInstructions, 1));
    Expected<Profile> MergedOr =
        mergeProfiles({P.Prof, CrossMon.liveProfile(Weight)});
    Profile Merged = MergedOr.take();
    // Keep the absolute cold budget θ·trainTotal and pin the frequency
    // cutoff to the original squash's: the live heat should flip
    // mispredicted regions hot, never reclassify hot blocks as cold
    // (emptied low frequency classes would otherwise let the cutoff
    // scan run further).
    Options Opts2 = Opts;
    Opts2.Theta = Opts.Theta *
                  (static_cast<double>(P.Prof.TotalInstructions) /
                   static_cast<double>(
                       std::max<uint64_t>(Merged.TotalInstructions, 1)));
    Opts2.ColdCutoffCap = SR.Cold.FrequencyCutoff;
    SquashResult SR2 = squashProgram(P.W.Prog, Merged, Opts2).take();
    DriftMonitor AfterMon(SR2.SP, Merged);
    SquashedRun AfterRun = monitoredRun(SR2.SP, P.W.TimingInput, AfterMon);
    const uint64_t TrapCyclesAfter = AfterRun.Runtime.TrapCycles.sum();
    const int64_t Recovered = static_cast<int64_t>(TrapCyclesBefore) -
                              static_cast<int64_t>(TrapCyclesAfter);

    const bool Ok = SameRun.Run.Status == RunStatus::Halted &&
                    CrossRun.Run.Status == RunStatus::Halted &&
                    AfterRun.Run.Status == RunStatus::Halted &&
                    CrossRun.Run.ExitCode == AfterRun.Run.ExitCode;
    if (!Ok) {
      std::fprintf(stderr, "stat_drift: %s did not run cleanly\n",
                   P.W.Name.c_str());
      return 1;
    }

    MetricsRegistry Reg;
    Same.exportMetrics(Reg, "drift.same.");
    Cross.exportMetrics(Reg, "drift.cross.");
    AfterMon.report().exportMetrics(Reg, "drift.after.");
    Reg.setCounter("drift.trap_cycles_before", TrapCyclesBefore);
    Reg.setCounter("drift.trap_cycles_after", TrapCyclesAfter);
    Reg.setGauge("drift.recovered_cycles", static_cast<double>(Recovered));
    Reg.setGauge("drift.live_weight", Weight);
    Reg.setHistogram("drift.cross.trap_cycles_hist",
                     CrossRun.Runtime.TrapCycles);
    Rows.emplace_back(P.W.Name, Reg.toJson());

    std::printf("%-10s %10.4f %10.4f %8.3f %14llu %14llu %10lld\n",
                P.W.Name.c_str(), Same.DriftScore, Cross.DriftScore,
                Cross.TopKOverlap, (unsigned long long)TrapCyclesBefore,
                (unsigned long long)TrapCyclesAfter, (long long)Recovered);
  }

  std::string Path = writeBenchJson("drift", Rows);
  std::printf("\nwrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
