//===- bench/stat_observability.cpp - Full-counter dump per workload ------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Squashes every workload at the repo's analog of the paper's mid θ, runs
// it on its timing input with the event trace enabled, and emits one
// machine-readable metrics row per workload (squash-time counters, runtime
// counters, trace accounting) to BENCH_observability.json. The terminal
// table is a small human-readable excerpt; the JSON carries everything the
// registry saw, so plotting scripts never parse printf output.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "squash/Observability.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Observability: full counter dump per workload ==\n\n");
  auto Suite = prepareSuite();
  std::printf("%-10s %10s %12s %10s %10s %8s\n", "program", "reduction",
              "decompress", "hits", "events", "dropped");

  std::vector<BenchRow> Rows;
  for (auto &P : Suite) {
    Options Opts;
    Opts.Theta = ThetaMid;
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
    SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput, 2'000'000'000ull,
                                  RuntimeSystem::DefaultTraceCapacity);

    vea::MetricsRegistry Reg;
    collectSquashMetrics(Reg, SR);
    collectRunMetrics(Reg, Run);
    Rows.emplace_back(P.W.Name, Reg.toJson());

    std::printf("%-10s %9.1f%% %12llu %10llu %10zu %8llu\n",
                P.W.Name.c_str(), 100.0 * SR.SP.Footprint.reduction(),
                (unsigned long long)Run.Runtime.Decompressions,
                (unsigned long long)Run.Runtime.BufferedHits,
                Run.Trace.size(), (unsigned long long)Run.TraceDropped);
  }

  std::string Path = writeBenchJson("observability", Rows);
  std::printf("\nwrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
