//===- bench/fig6_size_reduction.cpp - Figure 6 reproduction --------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Figure 6: "Code Size Reduction due to Profile-Guided Code Compression at
// Different Thresholds" — per benchmark and mean, across the θ sweep.
// Paper anchors: mean 13.7% at θ=0, 16.8% at θ=1e-5, 26.5% at θ=1.0;
// pgp best (22.1% at θ=0), adpcm/g721_enc worst.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Figure 6: code size reduction vs cold-code threshold "
              "==\n\n");
  auto Suite = prepareSuite();

  std::printf("%-10s", "benchmark");
  for (double Theta : ThetaSweep)
    std::printf(" %9s", thetaLabel(Theta).c_str());
  std::printf("\n");

  std::vector<BenchRow> Rows;
  std::vector<std::vector<double>> Ratios(ThetaSweep.size());
  for (auto &P : Suite) {
    std::printf("%-10s", P.W.Name.c_str());
    vea::MetricsRegistry Reg;
    for (size_t TI = 0; TI != ThetaSweep.size(); ++TI) {
      Options Opts;
      Opts.Theta = ThetaSweep[TI];
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
      double Reduction = SR.SP.Footprint.reduction();
      Ratios[TI].push_back(1.0 - Reduction);
      Reg.setGauge("fig6.reduction.theta_" + thetaLabel(ThetaSweep[TI]),
                   Reduction);
      std::printf(" %8.1f%%", 100.0 * Reduction);
    }
    Rows.emplace_back(P.W.Name, Reg.toJson());
    std::printf("\n");
  }

  std::printf("%-10s", "mean");
  vea::MetricsRegistry MeanReg;
  for (size_t TI = 0; TI != ThetaSweep.size(); ++TI) {
    double Mean = 1.0 - geomean(Ratios[TI]);
    MeanReg.setGauge("fig6.reduction.theta_" + thetaLabel(ThetaSweep[TI]),
                     Mean);
    std::printf(" %8.1f%%", 100.0 * Mean);
  }
  Rows.emplace_back("mean", MeanReg.toJson());
  std::printf("\n");
  std::string Path = writeBenchJson("fig6_size_reduction", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());

  std::printf("\npaper (Alpha/MediaBench): mean 13.7%% at theta=0, 16.8%% "
              "at 1e-5, 26.5%% at 1.0;\nreduction grows slowly with theta "
              "(five orders of magnitude buy ~10 points).\n");
  return 0;
}
