//===- bench/ablation_options.cpp - Design-choice ablations ---------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Ablates the design choices DESIGN.md calls out, at the overhead-visible
// threshold: region packing (Section 4), buffer-safe calls (Section 6.1),
// unswitching vs exclusion (Section 6.2), move-to-front coding (Section 3),
// and the buffer-reuse extension the paper leaves on the table.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Ablations at theta = %s ==\n\n",
              thetaLabel(ThetaMid).c_str());
  auto Suite = prepareSuite();

  struct Config {
    const char *Name;
    Options Opts;
  };
  Options Base;
  Base.Theta = ThetaMid;
  std::vector<Config> Configs;
  Configs.push_back({"default", Base});
  {
    Options O = Base;
    O.PackRegions = false;
    Configs.push_back({"no-packing", O});
  }
  // Whole-stage ablations skip the pass itself (its conservative fallback
  // runs instead) rather than flipping a bespoke option.
  {
    Options O = Base;
    O.DisabledPasses = {"buffer-safe"};
    Configs.push_back({"no-buffer-safe", O});
  }
  {
    Options O = Base;
    O.DisabledPasses = {"unswitch"};
    Configs.push_back({"no-unswitch", O});
  }
  {
    Options O = Base;
    O.MoveToFront = true;
    Configs.push_back({"move-to-front", O});
  }
  {
    Options O = Base;
    O.ReuseBufferedRegion = true;
    Configs.push_back({"reuse-buffer", O});
  }
  {
    Options O = Base;
    O.DeltaDisplacements = true;
    Configs.push_back({"delta-disp", O});
  }
  {
    Options O = Base;
    O.WholeFunctionRegions = true;
    Configs.push_back({"whole-function", O});
  }

  std::printf("%-16s %10s %10s %16s %10s\n", "config", "size", "time",
              "decompressions", "regions");
  for (const auto &C : Configs) {
    std::vector<double> Sizes, Times;
    uint64_t Decomps = 0, Regions = 0;
    for (auto &P : Suite) {
      vea::RunResult BaseRun = runBaseline(P, P.W.TimingInput);
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, C.Opts).take();
      Sizes.push_back(1.0 - SR.SP.Footprint.reduction());
      SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput);
      if (Run.Run.Status != vea::RunStatus::Halted) {
        std::printf("%s: RUN FAILED (%s)\n", C.Name,
                    Run.Run.FaultMessage.c_str());
        return 1;
      }
      Times.push_back(static_cast<double>(Run.Run.Cycles) /
                      static_cast<double>(BaseRun.Cycles));
      Decomps += Run.Runtime.Decompressions;
      Regions += SR.Regions.PackedRegions;
    }
    std::printf("%-16s %10.4f %10.4f %16llu %10llu\n", C.Name,
                geomean(Sizes), geomean(Times),
                (unsigned long long)Decomps, (unsigned long long)Regions);
  }

  std::printf("\nreading: packing shrinks the offset table and stub count; "
              "buffer-safety trims stub traffic;\nunswitching admits "
              "cold switch code; MTF and delta-disp trade decompressor "
              "complexity for stream entropy;\nbuffer reuse (not in the "
              "paper) removes re-decompression of the resident region;\n"
              "whole-function regions are Section 4's strawman — fewer "
              "compressible blocks and a larger buffer.\n");
  return 0;
}
