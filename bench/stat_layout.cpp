//===- bench/stat_layout.cpp - Profile-guided layout acceptance gate ------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The acceptance bench for the memory-aware fetch model and the layout
// pass (DESIGN.md §19): every workload runs under a small simulated
// I-cache in a layout x squash matrix —
//
//            layout off            layout on
//   squash   program order         Pettis-Hansen order (link/Layout's
//   off      (identity image)      explicit-order overload)
//   squash   pipeline, layout      pipeline with ProfileLayout=true
//   on       pass emits identity   (the layout pass reorders the hot half)
//
// and the bench reports miss-rate and cycle deltas per workload.
//
// Acceptance criteria (exit nonzero on failure, so CI can gate):
//
//  1. With squashing enabled, layout-on strictly reduces I-cache misses
//     vs layout-off on at least 8 of the 11 workloads. Layout only moves
//     whole functions, so this is purely a placement win.
//  2. Guest behaviour (exit code + output bytes) is identical across every
//     arm of the matrix, including both codec configurations (huffman and
//     per-region auto) under layout-on — the cache is tag-only and layout
//     preserves all control flow, so nothing the guest computes may change.
//  3. The cycle-attribution ledger conserves on every squashed run, with
//     the IcacheMiss term carrying the modeled penalties.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ir/IR.h"
#include "squash/LayoutPass.h"
#include "squash/Telemetry.h"

using namespace bench;
using namespace vea;
using namespace squash;

namespace {

/// The bench's cache: small (16 sets x 2 ways x 32 B = 1 KiB) so the hot
/// half does not trivially fit and conflict misses — the thing function
/// placement controls — are visible; 2-way so the fixed-address runtime
/// areas (buffer, stubs) do not alias the hot code chaotically.
IcacheConfig benchIcache() {
  IcacheConfig C;
  C.Enabled = true;
  C.LineBytes = 32;
  C.Sets = 16;
  C.Ways = 2;
  return C;
}

/// One arm's observables.
struct ArmResult {
  uint64_t Misses = 0;
  uint64_t Fetches = 0;
  uint64_t Cycles = 0;
  std::vector<uint8_t> Output;
  uint32_t ExitCode = 0;
};

/// Runs an uncompressed image under the bench cache.
ArmResult runPlain(const Image &Img, const std::vector<uint8_t> &Input) {
  Machine::Config MC;
  MC.Icache = benchIcache();
  Machine M(Img, MC);
  M.setInput(Input);
  RunResult R = M.run();
  if (R.Status != RunStatus::Halted)
    reportFatalError("stat_layout: uncompressed run did not halt: " +
                     R.FaultMessage);
  ArmResult A;
  A.Misses = R.IcacheMisses;
  A.Fetches = R.IcacheFetches;
  A.Cycles = R.Cycles;
  A.Output = M.output();
  A.ExitCode = R.ExitCode;
  return A;
}

double missRate(const ArmResult &A) {
  return A.Fetches ? static_cast<double>(A.Misses) / A.Fetches : 0.0;
}

} // namespace

int main() {
  std::printf("== Layout matrix: I-cache misses, layout x squash ==\n\n");
  auto Suite = prepareSuite();
  // ThetaMid compresses regions on every workload while leaving a hot
  // half big enough that function placement is visible in the cache.
  const double Theta = ThetaMid;

  std::printf("cache: %u B lines x %u sets x %u way(s), %llu-cycle miss\n\n",
              benchIcache().LineBytes, benchIcache().Sets, benchIcache().Ways,
              (unsigned long long)benchIcache().MissCycles);
  std::printf("%-10s %12s %12s %12s %12s %9s\n", "program", "plain/id",
              "plain/ph", "squash/id", "squash/ph", "delta");

  std::vector<BenchRow> JsonRows;
  unsigned Improved = 0;
  std::vector<double> CycleRatios;

  for (auto &P : Suite) {
    RunResult Base = runBaseline(P, P.W.TimingInput);

    // Squash-off arms: the same compacted program, identity placement vs
    // the Pettis-Hansen order, run uncompressed.
    Cfg G(P.W.Prog);
    std::vector<unsigned> Order = computeFunctionLayout(G, P.Prof);
    Image PhImage =
        layoutProgramOrError(P.W.Prog, DefaultBase, Order).take();
    ArmResult PlainId = runPlain(P.Baseline, P.W.TimingInput);
    ArmResult PlainPh = runPlain(PhImage, P.W.TimingInput);
    if (PlainId.ExitCode != Base.ExitCode ||
        PlainPh.ExitCode != Base.ExitCode || PlainPh.Output != PlainId.Output)
      reportFatalError("stat_layout: " + P.W.Name +
                       ": reordered uncompressed image diverged");

    // Squash-on arms: the full pipeline with the layout pass off and on,
    // plus the auto-codec variants for the behaviour matrix.
    ArmResult Sq[2];
    for (int Layout = 0; Layout != 2; ++Layout) {
      for (const char *Codec : {"huffman", "auto"}) {
        Options Opts;
        Opts.Theta = Theta;
        Opts.Codec = Codec;
        Opts.ProfileLayout = Layout == 1;
        Opts.Icache = benchIcache();
        SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
        SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput);
        std::string Arm = std::string(Layout ? "layout-on/" : "layout-off/") +
                          Codec;
        requireHalted(Run, Base, P.W.Name, Arm);
        if (Run.Output != PlainId.Output)
          reportFatalError("stat_layout: " + P.W.Name + " (" + Arm +
                           "): output differs from the uncompressed run");
        CycleLedger L = buildCycleLedger(Run);
        if (!L.conserves() || L.IcacheMiss != Run.Run.IcacheMissCycles)
          reportFatalError("stat_layout: " + P.W.Name + " (" + Arm +
                           "): cycle ledger does not conserve");
        if (std::string(Codec) == "huffman") {
          Sq[Layout].Misses = Run.Run.IcacheMisses;
          Sq[Layout].Fetches = Run.Run.IcacheFetches;
          Sq[Layout].Cycles = Run.Run.Cycles;
        }
      }
    }

    const bool Win = Sq[1].Misses < Sq[0].Misses;
    if (Win)
      ++Improved;
    const double Delta =
        Sq[0].Misses ? 100.0 * (static_cast<double>(Sq[1].Misses) -
                                static_cast<double>(Sq[0].Misses)) /
                           static_cast<double>(Sq[0].Misses)
                     : 0.0;
    CycleRatios.push_back(Sq[0].Cycles
                              ? static_cast<double>(Sq[1].Cycles) /
                                    static_cast<double>(Sq[0].Cycles)
                              : 1.0);

    std::printf("%-10s %12llu %12llu %12llu %12llu %+8.2f%%%s\n",
                P.W.Name.c_str(), (unsigned long long)PlainId.Misses,
                (unsigned long long)PlainPh.Misses,
                (unsigned long long)Sq[0].Misses,
                (unsigned long long)Sq[1].Misses, Delta, Win ? "" : "  (no)");

    MetricsRegistry Reg;
    Reg.setCounter("layout.plain_identity_misses", PlainId.Misses);
    Reg.setCounter("layout.plain_ph_misses", PlainPh.Misses);
    Reg.setCounter("layout.squash_off_misses", Sq[0].Misses);
    Reg.setCounter("layout.squash_on_misses", Sq[1].Misses);
    Reg.setCounter("layout.squash_off_cycles", Sq[0].Cycles);
    Reg.setCounter("layout.squash_on_cycles", Sq[1].Cycles);
    Reg.setGauge("layout.squash_off_miss_rate", missRate(Sq[0]));
    Reg.setGauge("layout.squash_on_miss_rate", missRate(Sq[1]));
    Reg.setGauge("layout.miss_delta_pct", Delta);
    Reg.setCounter("layout.improved", Win ? 1 : 0);
    JsonRows.emplace_back(P.W.Name, Reg.toJson());
  }

  {
    MetricsRegistry Reg;
    Reg.setCounter("layout.workloads_improved", Improved);
    Reg.setCounter("layout.workloads_total", (uint64_t)Suite.size());
    Reg.setGauge("layout.cycle_ratio_geomean", geomean(CycleRatios));
    JsonRows.emplace_back("suite/summary", Reg.toJson());
  }

  const bool Pass = Improved >= 8;
  char Verdict[160];
  std::snprintf(Verdict, sizeof(Verdict),
                "layout-on reduced I-cache misses on %u/%zu workloads "
                "(floor: 8); cycle ratio geomean x%.4f",
                Improved, Suite.size(), geomean(CycleRatios));
  return finishBench("layout", JsonRows, Pass, Verdict);
}
