//===- bench/fig4_cold_code.cpp - Figure 4 reproduction -------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Figure 4: "Amount of Cold and Compressible Code (Normalized)" — the
// geometric mean, over the suite, of the fraction of static code that is
// cold and the fraction that actually lands in compressible regions, per
// threshold. Paper: cold 73% at θ=0 rising to ~94% at 1e-2 and 100% at 1;
// compressible 65% at θ=0 rising to ~96% at 1.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Figure 4: amount of cold and compressible code ==\n\n");
  auto Suite = prepareSuite();

  std::printf("%-12s %10s %14s\n", "theta", "cold", "compressible");
  std::vector<BenchRow> Rows;
  for (double Theta : ThetaSweep) {
    std::vector<double> Cold, Compressible;
    for (auto &P : Suite) {
      Options Opts;
      Opts.Theta = Theta;
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
      Cold.push_back(SR.Cold.coldFraction());
      Compressible.push_back(
          static_cast<double>(SR.Regions.CompressibleInstructions) /
          static_cast<double>(SR.Cold.TotalInstructions));
    }
    vea::MetricsRegistry Reg;
    Reg.setGauge("fig4.cold_fraction", geomean(Cold));
    Reg.setGauge("fig4.compressible_fraction", geomean(Compressible));
    Rows.emplace_back("theta=" + thetaLabel(Theta), Reg.toJson());
    std::printf("%-12s %9.1f%% %13.1f%%\n", thetaLabel(Theta).c_str(),
                100.0 * geomean(Cold), 100.0 * geomean(Compressible));
  }
  std::string Path = writeBenchJson("fig4_cold_code", Rows);
  std::printf("\nwrote %zu row(s) to %s\n", Rows.size(), Path.c_str());

  std::printf("\npaper: cold 73%% (theta=0) -> 94%% (1e-2) -> 100%% (1); "
              "compressible 65%% -> ~96%%.\nNot all cold code is "
              "compressible: small regions whose entry stubs would cost "
              "more than compression saves are left alone (Section 4).\n");
  return 0;
}
