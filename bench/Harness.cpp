//===- bench/Harness.cpp - Shared experiment harness ----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Error.h"

using namespace bench;
using namespace vea;

const std::vector<double> bench::ThetaSweep = {0.0,  1e-5, 1e-4, 1e-3,
                                               1e-2, 0.1,  1.0};
const double bench::ThetaLow = 1e-3;
const double bench::ThetaMid = 1e-2;

std::vector<Prepared> bench::prepareSuite(double Scale) {
  std::vector<Prepared> Out;
  for (auto &W : workloads::buildAllWorkloads(Scale)) {
    Prepared P;
    P.W = std::move(W);
    P.Compact = compactProgram(P.W.Prog).take();
    P.Baseline = layoutProgram(P.W.Prog);
    P.Prof = squash::profileImage(P.Baseline, P.W.ProfilingInput).take();
    Out.push_back(std::move(P));
  }
  return Out;
}

RunResult bench::runBaseline(const Prepared &P,
                             const std::vector<uint8_t> &Input) {
  Machine M(P.Baseline);
  M.setInput(Input);
  RunResult R = M.run();
  if (R.Status != RunStatus::Halted)
    reportFatalError("bench: baseline run of " + P.W.Name +
                     " did not halt: " + R.FaultMessage);
  return R;
}

void bench::requireHalted(const squash::SquashedRun &Run,
                          const RunResult &Base, const std::string &Workload,
                          const std::string &Context) {
  if (Run.Run.Status != RunStatus::Halted ||
      Run.Run.ExitCode != Base.ExitCode)
    reportFatalError("bench: " + Workload + " (" + Context +
                     "): squashed run diverged from baseline: " +
                     Run.Run.FaultMessage);
}

void bench::requireSameBehaviour(const squash::SquashedRun &Run,
                                 const squash::SquashedRun &Reference,
                                 const std::string &Workload,
                                 const std::string &Context) {
  if (Run.Run.Status != Reference.Run.Status ||
      Run.Run.ExitCode != Reference.Run.ExitCode ||
      Run.Output != Reference.Output)
    reportFatalError("bench: " + Workload + " (" + Context +
                     "): guest behaviour differs from reference run");
}

double bench::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

std::string bench::thetaLabel(double Theta) {
  char Buf[32];
  if (Theta == 0.0)
    return "0";
  if (Theta >= 0.01)
    std::snprintf(Buf, sizeof(Buf), "%.2g", Theta);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0e", Theta);
  return Buf;
}

std::string bench::writeBenchJson(const std::string &Name,
                                  const std::vector<BenchRow> &Rows) {
  std::string Path = "BENCH_" + Name + ".json";
  std::string Out = "[\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    Out += "  {\"label\":\"" + jsonEscape(Rows[I].first) +
           "\",\"metrics\":" + Rows[I].second + "}";
    Out += I + 1 == Rows.size() ? "\n" : ",\n";
  }
  Out += "]\n";
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F || std::fwrite(Out.data(), 1, Out.size(), F) != Out.size())
    reportFatalError("bench: cannot write " + Path);
  std::fclose(F);
  return Path;
}

int bench::finishBench(const std::string &Name,
                       const std::vector<BenchRow> &Rows, bool Pass,
                       const std::string &Verdict) {
  std::string Path = writeBenchJson(Name, Rows);
  std::printf("\nwrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  std::printf("\n%s. %s\n", Verdict.c_str(), Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
