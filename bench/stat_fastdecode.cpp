//===- bench/stat_fastdecode.cpp - Table-driven decode throughput ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The acceptance bench for the fast-decode subsystem (DESIGN.md §16), on
// two axes:
//
//  1. Host decode throughput. The acceptance number mirrors
//     bench/micro_codec: a profile-shaped synthetic hot region (skewed
//     registers, clustered displacements) decoded bit-serially vs with the
//     table-driven FastDecoder at the default window width (floor: >= 5x
//     over symbol-at-a-time). Alongside it, the full real workload suite
//     is decoded at every probe width — byte-identity checked each time —
//     as an informative table: the paper's workload streams average ~14
//     bits/instruction, so their table hit rates (and speedups, ~4x) sit
//     below the hot-region shape the buffer actually replays.
//  2. Decode-ahead on the alternating-region thrash workload: the same
//     squashed image run with prefetch off and on must produce identical
//     guest behaviour while the on-run's TrapCycles p99 drops (prefetched
//     fills skip the per-instruction decode charge).
//  3. Disabled-spans overhead (DESIGN.md §18): the hot-region decode pass
//     re-timed with the inert SpanScope the runtime opens around each
//     region fill; with tracing off the ratio must stay <= 1.02.
//
// Exits nonzero if any acceptance criterion fails, so CI can gate on it.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "huff/FastDecoder.h"
#include "ir/Builder.h"
#include "support/Span.h"

#include <algorithm>
#include <chrono>

using namespace bench;
using namespace vea;
using namespace squash;

namespace {

/// Probe-window widths for the throughput table (EXPERIMENTS.md).
const std::vector<unsigned> TableBits = {4, 8, 11, 14};

/// Decodes every region of \p SP once with the bit-serial decoder,
/// appending the re-encoded words of each instruction to \p Words. Fatal
/// on a corrupt stream: this bench only sees freshly squashed images.
void decodeAllSlow(const SquashedProgram &SP, const uint8_t *Mem,
                   std::vector<uint32_t> &Words) {
  const RuntimeLayout &L = SP.Layout;
  MInst I;
  for (const RegionImageInfo &RI : SP.Regions) {
    BitReader Reader(Mem + L.BlobBase, L.BlobBytes);
    Reader.seekBit(RI.BitOffset);
    StreamCodecs::RegionDecoder Dec(SP.Codecs, Reader);
    while (Dec.next(I))
      Words.push_back(encode(I));
    if (!Dec.ok()) {
      std::fprintf(stderr, "slow decode reported corrupt stream\n");
      std::exit(1);
    }
  }
}

/// Same, with the fast decoder over \p Tables.
void decodeAllFast(const SquashedProgram &SP, const uint8_t *Mem,
                   const std::shared_ptr<const FastTables> &Tables,
                   std::vector<uint32_t> &Words) {
  const RuntimeLayout &L = SP.Layout;
  MInst I;
  for (const RegionImageInfo &RI : SP.Regions) {
    FastDecoder Dec(SP.Codecs, Tables, Mem + L.BlobBase, L.BlobBytes,
                    RI.BitOffset);
    while (Dec.next(I))
      Words.push_back(encode(I));
    if (!Dec.ok()) {
      std::fprintf(stderr, "fast decode reported corrupt stream\n");
      std::exit(1);
    }
  }
}

/// Decode-only loops for the timed passes: consume every instruction and
/// fold one field into a checksum. The identity passes above re-encode
/// and store every word; that overhead is common to both decoders and
/// would dilute the measured decode ratio, so timing excludes it.
uint64_t countAllSlow(const SquashedProgram &SP, const uint8_t *Mem) {
  const RuntimeLayout &L = SP.Layout;
  MInst I;
  uint64_t Sink = 0;
  for (const RegionImageInfo &RI : SP.Regions) {
    BitReader Reader(Mem + L.BlobBase, L.BlobBytes);
    Reader.seekBit(RI.BitOffset);
    StreamCodecs::RegionDecoder Dec(SP.Codecs, Reader);
    while (Dec.next(I))
      Sink += I.get(FieldKind::Opcode);
  }
  return Sink;
}

uint64_t countAllFast(const SquashedProgram &SP, const uint8_t *Mem,
                      const std::shared_ptr<const FastTables> &Tables) {
  const RuntimeLayout &L = SP.Layout;
  // Chunked batch decode, same as the runtime's region fill loop.
  std::array<MInst, 64> Chunk;
  uint64_t Sink = 0;
  for (const RegionImageInfo &RI : SP.Regions) {
    FastDecoder Dec(SP.Codecs, Tables, Mem + L.BlobBase, L.BlobBytes,
                    RI.BitOffset);
    while (size_t Got = Dec.decodeRun(Chunk.data(), Chunk.size()))
      for (size_t K = 0; K != Got; ++K)
        Sink += Chunk[K].get(FieldKind::Opcode);
  }
  return Sink;
}

/// Times \p Reps full-suite decodes and returns host ns per instruction.
template <typename Fn>
double timeNsPerInstr(Fn &&Decode, uint64_t Reps, uint64_t Instrs) {
  using Clock = std::chrono::steady_clock;
  uint64_t Sink = 0;
  auto T0 = Clock::now();
  for (uint64_t R = 0; R != Reps; ++R)
    Sink += Decode();
  auto T1 = Clock::now();
  static volatile uint64_t Keep;
  Keep = Sink;
  (void)Keep;
  double Ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
          .count());
  return Ns / static_cast<double>(Reps * Instrs);
}

/// The profile-shaped synthetic region of bench/micro_codec's decode
/// benchmarks: a four-opcode mix whose operands follow the skew the
/// paper's premise rests on — a small hot register set, clustered
/// word-aligned displacements, mostly-tiny immediates, short branch hops.
std::vector<MInst> syntheticHotRegion(size_t Len, uint64_t Seed) {
  Rng R(Seed);
  auto PickReg = [&R]() -> unsigned {
    static constexpr unsigned Hot[4] = {1, 2, 3, 29};
    return R.nextBelow(4) ? Hot[R.nextBelow(4)] : R.nextBelow(31);
  };
  std::vector<MInst> Region;
  for (size_t I = 0; I != Len; ++I) {
    switch (R.nextBelow(4)) {
    case 0:
      Region.push_back(makeRRR(Opcode::Add, PickReg(), PickReg(), PickReg()));
      break;
    case 1:
      Region.push_back(makeMem(Opcode::Ldw, PickReg(), 30,
                               static_cast<int32_t>(R.nextBelow(8)) * 4));
      break;
    case 2:
      Region.push_back(
          makeRRI(Opcode::Addi, PickReg(), PickReg(),
                  R.nextBelow(5) ? R.nextBelow(8) : R.nextBelow(256)));
      break;
    default:
      Region.push_back(makeBranch(Opcode::Beq, PickReg(),
                                  static_cast<int32_t>(R.nextBelow(8)) + 1));
      break;
    }
  }
  return Region;
}

/// Measures the acceptance ratio on the synthetic hot region: bit-serial
/// vs table-driven ns/instr at the default width, best-of-\p Trials to
/// shed scheduler noise. Verifies byte-identical decode first.
double syntheticSpeedup(double &SlowNsOut, double &FastNsOut) {
  const size_t Len = 512;
  auto Region = syntheticHotRegion(Len, 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Region, W).check();
  std::vector<uint8_t> Blob = W.takeBytes();
  auto Tables = SC.fastTables(FastTables::DefaultBits);

  // Both passes count instructions and read one decoded field per pass
  // (keeping the instruction stores observable), mirroring micro_codec's
  // decode loops so the two benches report the same quantity.
  const auto SlowPass = [&] {
    BitReader Rd(Blob);
    StreamCodecs::RegionDecoder Dec(SC, Rd);
    MInst I;
    uint64_t Sink = 0;
    while (Dec.next(I))
      ++Sink;
    return Sink + I.get(FieldKind::Opcode);
  };
  std::array<MInst, 64> Chunk;
  const auto FastPass = [&] {
    FastDecoder Dec(SC, Tables, Blob.data(), Blob.size(), 0);
    uint64_t Sink = 0;
    while (size_t Got = Dec.decodeRun(Chunk.data(), Chunk.size()))
      Sink += Got;
    return Sink + Chunk[0].get(FieldKind::Opcode);
  };

  // Byte-identity on the acceptance stream.
  {
    std::vector<uint32_t> Ref, Got;
    BitReader Rd(Blob);
    StreamCodecs::RegionDecoder SDec(SC, Rd);
    MInst I;
    while (SDec.next(I))
      Ref.push_back(encode(I));
    FastDecoder FDec(SC, Tables, Blob.data(), Blob.size(), 0);
    while (FDec.next(I))
      Got.push_back(encode(I));
    if (Ref != Got || Ref.size() != Len) {
      std::fprintf(stderr, "synthetic region: fast decode not identical\n");
      std::exit(1);
    }
  }

  const int Trials = 5;
  const uint64_t Reps = 400;
  double SlowNs = 1e30, FastNs = 1e30;
  for (int T = 0; T != Trials; ++T) {
    SlowNs = std::min(SlowNs, timeNsPerInstr(SlowPass, Reps, Len));
    FastNs = std::min(FastNs, timeNsPerInstr(FastPass, Reps, Len));
  }
  SlowNsOut = SlowNs;
  FastNsOut = FastNs;
  return FastNs > 0 ? SlowNs / FastNs : 0.0;
}

/// Measures what the telemetry hooks cost when tracing is off: the same
/// table-driven hot-region pass, plain vs wrapped in the inert SpanScope
/// the runtime opens around each region fill. A disabled scope is one
/// relaxed load plus a dead flag, so the ratio should be indistinguishable
/// from 1; the acceptance bound (DESIGN.md §18) is <= 1.02. Best-of-Trials
/// on both sides, interleaved, to shed scheduler noise.
double disabledSpanOverhead(double &PlainNsOut, double &SpannedNsOut) {
  const size_t Len = 512;
  auto Region = syntheticHotRegion(Len, 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Region, W).check();
  std::vector<uint8_t> Blob = W.takeBytes();
  auto Tables = SC.fastTables(FastTables::DefaultBits);

  // The bound only holds for *disabled* tracing; make that state explicit
  // rather than inheriting whatever a previous part left behind.
  SpanTracer::instance().setEnabled(false);

  std::array<MInst, 64> Chunk;
  const auto PlainPass = [&] {
    FastDecoder Dec(SC, Tables, Blob.data(), Blob.size(), 0);
    uint64_t Sink = 0;
    while (size_t Got = Dec.decodeRun(Chunk.data(), Chunk.size()))
      Sink += Got;
    return Sink + Chunk[0].get(FieldKind::Opcode);
  };
  const auto SpannedPass = [&] {
    SpanScope Fill("region.fill", "decode");
    FastDecoder Dec(SC, Tables, Blob.data(), Blob.size(), 0);
    uint64_t Sink = 0;
    while (size_t Got = Dec.decodeRun(Chunk.data(), Chunk.size()))
      Sink += Got;
    return Sink + Chunk[0].get(FieldKind::Opcode) + (Fill.active() ? 1 : 0);
  };

  const int Trials = 9;
  const uint64_t Reps = 400;
  double PlainNs = 1e30, SpannedNs = 1e30;
  for (int T = 0; T != Trials; ++T) {
    PlainNs = std::min(PlainNs, timeNsPerInstr(PlainPass, Reps, Len));
    SpannedNs = std::min(SpannedNs, timeNsPerInstr(SpannedPass, Reps, Len));
  }
  PlainNsOut = PlainNs;
  SpannedNsOut = SpannedNs;
  return PlainNs > 0 ? SpannedNs / PlainNs : 0.0;
}

/// The alternating-region thrash workload from stat_decode_cache: a hot
/// driver loop whose guarded cold body calls three cold leaves in
/// rotation, squashing (PackRegions off) into four regions that overflow
/// the single-slot buffer on every request.
Program thrashProgram(uint32_t Iterations) {
  ProgramBuilder PB("thrash");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.mov(20, 0);
    F.li(21, static_cast<int32_t>(Iterations));
    F.li(22, 0);
    F.label("loop");
    F.beq(20, "next");
    F.label("cold");
    for (int I = 0; I != 6; ++I)
      F.addi(1, 1, 1);
    F.call("f0");
    F.add(22, 22, 0);
    F.call("f1");
    F.add(22, 22, 0);
    F.call("f2");
    F.add(22, 22, 0);
    F.label("next");
    F.subi(21, 21, 1);
    F.bne(21, "loop");
    F.mov(16, 22);
    F.sys(SysFunc::PutWord);
    F.andi(16, 22, 0xFF);
    F.halt();
  }
  for (int FI = 0; FI != 3; ++FI) {
    FunctionBuilder F = PB.beginFunction("f" + std::to_string(FI));
    for (int I = 0; I != 12; ++I)
      F.addi(1, 1, 1);
    F.li(0, 7 * FI + 3);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

} // namespace

int main() {
  std::printf("== Table-driven decode statistics ==\n\n");

  // Part 1a: the acceptance measurement, mirroring bench/micro_codec's
  // decode benchmarks.
  double SynSlowNs = 0, SynFastNs = 0;
  const double SynSpeedup = syntheticSpeedup(SynSlowNs, SynFastNs);
  std::printf("-- hot-region decode, bit-serial vs table-driven at %ub --\n\n",
              FastTables::DefaultBits);
  std::printf("slow %.1f ns/instr, fast %.1f ns/instr: %.1fx "
              "(acceptance floor: 5x). %s\n\n",
              SynSlowNs, SynFastNs, SynSpeedup,
              SynSpeedup >= 5.0 ? "PASS" : "FAIL");

  // Part 1b: the disabled-spans overhead bound. The runtime opens a
  // SpanScope around every region fill; with tracing off that scope must
  // be free on the hot loop.
  double PlainNs = 0, SpannedNs = 0;
  const double SpanRatio = disabledSpanOverhead(PlainNs, SpannedNs);
  const bool SpanOk = SpanRatio <= 1.02;
  std::printf("-- disabled-spans overhead on the hot-region decode loop --\n\n");
  std::printf("plain %.2f ns/instr, with inert SpanScope %.2f ns/instr: "
              "x%.4f (acceptance ceiling: x1.02). %s\n\n",
              PlainNs, SpannedNs, SpanRatio, SpanOk ? "PASS" : "FAIL");

  // Part 1c: decode throughput across the real workload suite, table bits
  // x workload, with byte-identity checked at every width.
  auto Suite = prepareSuite();
  const double Theta = 0.1; // Compresses regions on all 11 workloads.
  std::printf("-- host decode ns/instr, slow (bit-serial) vs fast at each "
              "window width (theta = %s) --\n\n",
              thetaLabel(Theta).c_str());
  std::printf("%-10s %8s %8s", "program", "instrs", "slow");
  for (unsigned Bits : TableBits)
    std::printf("  %5ub  (x)", Bits);
  std::printf("\n");

  std::vector<BenchRow> JsonRows;
  std::vector<double> Speedups; // At the default width, one per workload.
  for (auto &P : Suite) {
    Options Opts;
    Opts.Theta = Theta;
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
    if (SR.Identity) {
      std::fprintf(stderr, "%s unexpectedly squashed to identity\n",
                   P.W.Name.c_str());
      return 1;
    }
    const SquashedProgram &SP = SR.SP;
    Machine M(SP.Img);
    const uint8_t *Mem = M.memData();

    std::vector<uint32_t> Reference;
    decodeAllSlow(SP, Mem, Reference);
    if (Reference.empty()) {
      std::fprintf(stderr, "%s has no stored instructions\n",
                   P.W.Name.c_str());
      return 1;
    }
    const uint64_t Instrs = Reference.size();
    const uint64_t Reps =
        std::max<uint64_t>(8, std::min<uint64_t>(20000, 200000 / Instrs));

    std::vector<uint32_t> Scratch;
    double SlowNs =
        timeNsPerInstr([&] { return countAllSlow(SP, Mem); }, Reps, Instrs);

    vea::MetricsRegistry Reg;
    Reg.setCounter("decode.instructions", Instrs);
    Reg.setGauge("decode.slow_ns_per_instr", SlowNs);
    std::printf("%-10s %8llu %7.1f", P.W.Name.c_str(),
                static_cast<unsigned long long>(Instrs), SlowNs);
    for (unsigned Bits : TableBits) {
      auto Tables = SP.Codecs.fastTables(Bits);
      Scratch.clear();
      decodeAllFast(SP, Mem, Tables, Scratch);
      if (Scratch != Reference) {
        std::fprintf(stderr,
                     "\n%s: fast decode at %u bits is not byte-identical\n",
                     P.W.Name.c_str(), Bits);
        return 1;
      }
      double FastNs = timeNsPerInstr(
          [&] { return countAllFast(SP, Mem, Tables); }, Reps, Instrs);
      double Speedup = FastNs > 0 ? SlowNs / FastNs : 0.0;
      if (Bits == FastTables::DefaultBits)
        Speedups.push_back(Speedup > 0 ? Speedup : 1e-6);
      std::printf(" %5.1f %4.1fx", FastNs, Speedup);
      std::string Tag = "decode.fast" + std::to_string(Bits);
      Reg.setGauge(Tag + "_ns_per_instr", FastNs);
      Reg.setGauge(Tag + "_speedup", Speedup);
    }
    std::printf("\n");
    JsonRows.emplace_back(P.W.Name, Reg.toJson());
  }

  const double Geomean11 = geomean(Speedups);
  std::printf("\ngeomean workload speedup at %u bits: %.1fx "
              "(informative; the workload streams average ~14 bits/instr, "
              "well past the window).\n\n",
              FastTables::DefaultBits, Geomean11);

  // Part 2: decode-ahead on the thrash workload — identical guest
  // behaviour, lower TrapCycles tail.
  constexpr uint32_t Iterations = 200;
  Program Ref = thrashProgram(Iterations);
  Profile Prof;
  {
    Program Prog = Ref;
    Prof = profileImage(layoutProgram(Prog), {0}).take();
  }
  Options Opts;
  Opts.PackRegions = false;
  SquashResult SR = squashProgram(Ref, Prof, Opts).take();
  if (SR.Identity) {
    std::fprintf(stderr, "thrash workload squashed to identity\n");
    return 1;
  }

  auto RunThrash = [&](bool DecodeAhead) {
    SquashedProgram SP = SR.SP;
    SP.Opts.DecodeAhead = DecodeAhead;
    SquashedRun Run = runSquashed(SP, {1});
    if (Run.Run.Status != RunStatus::Halted) {
      std::fprintf(stderr, "thrash run faulted: %s\n",
                   Run.Run.FaultMessage.c_str());
      std::exit(1);
    }
    return Run;
  };
  SquashedRun Off = RunThrash(false);
  SquashedRun On = RunThrash(true);

  const bool SameBehaviour = On.Output == Off.Output &&
                             On.Run.ExitCode == Off.Run.ExitCode &&
                             On.Runtime.Decompressions ==
                                 Off.Runtime.Decompressions;
  const uint64_t OffP99 = Off.Runtime.TrapCycles.percentile(99.0);
  const uint64_t OnP99 = On.Runtime.TrapCycles.percentile(99.0);
  const uint64_t Hits = On.Runtime.PrefetchHits;
  const double HitRate =
      On.Runtime.Decompressions
          ? static_cast<double>(Hits) / On.Runtime.Decompressions
          : 0.0;

  std::printf("-- decode-ahead on the thrash workload (%u iterations) --\n\n",
              Iterations);
  std::printf("%-18s %12s %12s\n", "", "prefetch off", "prefetch on");
  std::printf("%-18s %12llu %12llu\n", "trap p50 cycles",
              static_cast<unsigned long long>(
                  Off.Runtime.TrapCycles.percentile(50.0)),
              static_cast<unsigned long long>(
                  On.Runtime.TrapCycles.percentile(50.0)));
  std::printf("%-18s %12llu %12llu\n", "trap p99 cycles",
              static_cast<unsigned long long>(OffP99),
              static_cast<unsigned long long>(OnP99));
  std::printf("%-18s %12llu %12llu\n", "trap cycles total",
              static_cast<unsigned long long>(Off.Runtime.TrapCycles.sum()),
              static_cast<unsigned long long>(On.Runtime.TrapCycles.sum()));
  std::printf("prefetch: %llu launched, %llu hits (%.0f%% of fills), %llu "
              "wasted, %llu late.\n",
              static_cast<unsigned long long>(On.Runtime.PrefetchLaunches),
              static_cast<unsigned long long>(Hits), 100.0 * HitRate,
              static_cast<unsigned long long>(On.Runtime.PrefetchWasted),
              static_cast<unsigned long long>(On.Runtime.PrefetchLate));

  const bool P99Drop = OnP99 < OffP99;
  std::printf("\nguest behaviour identical: %s; TrapCycles p99 %llu -> %llu "
              "(%s). %s\n",
              SameBehaviour ? "yes" : "NO",
              static_cast<unsigned long long>(OffP99),
              static_cast<unsigned long long>(OnP99),
              P99Drop ? "drop" : "NO DROP",
              SameBehaviour && P99Drop ? "PASS" : "FAIL");

  {
    vea::MetricsRegistry Reg;
    Reg.setCounter("thrash.trap_p99_off", OffP99);
    Reg.setCounter("thrash.trap_p99_on", OnP99);
    Reg.setCounter("thrash.trap_sum_off", Off.Runtime.TrapCycles.sum());
    Reg.setCounter("thrash.trap_sum_on", On.Runtime.TrapCycles.sum());
    Reg.setCounter("thrash.prefetch_launches",
                   On.Runtime.PrefetchLaunches);
    Reg.setCounter("thrash.prefetch_hits", Hits);
    Reg.setCounter("thrash.prefetch_wasted", On.Runtime.PrefetchWasted);
    Reg.setGauge("thrash.prefetch_hit_rate", HitRate);
    Reg.setGauge("thrash.identical", SameBehaviour ? 1.0 : 0.0);
    JsonRows.emplace_back("thrash/decode_ahead", Reg.toJson());
  }
  {
    vea::MetricsRegistry Reg;
    Reg.setGauge("decode.geomean_speedup_11b", Geomean11);
    Reg.setGauge("decode.synthetic_slow_ns", SynSlowNs);
    Reg.setGauge("decode.synthetic_fast_ns", SynFastNs);
    Reg.setGauge("decode.synthetic_speedup_11b", SynSpeedup);
    Reg.setGauge("decode.span_plain_ns", PlainNs);
    Reg.setGauge("decode.span_inert_ns", SpannedNs);
    Reg.setGauge("decode.disabled_span_overhead", SpanRatio);
    JsonRows.emplace_back("suite/summary", Reg.toJson());
  }
  std::string Path = writeBenchJson("fastdecode", JsonRows);
  std::printf("wrote %zu row(s) to %s\n", JsonRows.size(), Path.c_str());

  return (SynSpeedup >= 5.0 && SpanOk && SameBehaviour && P99Drop) ? 0 : 1;
}
