//===- bench/stat_attribution.cpp - Cycle-attribution conservation gate ---===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The acceptance bench for the cycle-attribution ledger (DESIGN.md §18):
// squashes every workload at ThetaMid, runs it, and derives the ledger
//
//   GuestExecute + TrapSetup + sum(DecodeByCodec) + IcacheFlush
//     + IcacheMiss + RestoreStub  ==  Machine total cycles
//
// The identity must hold exactly — an unattributed or double-charged cycle
// exits nonzero, so CI can gate on it. Conservation is checked on four run
// outcomes per workload: the clean halt, an instruction-limit stop partway
// through (the run ends mid-trap-sequence, the hardest case for adjacent
// counters), a tiny-limit stop that typically dies inside the first trap,
// and a halt under the modeled I-cache (flat flush charges replaced by
// per-fetch miss penalties — the IcacheMiss term must absorb them exactly,
// and guest behaviour must not change).
//
// The bench also validates the tracing side of the telemetry PR:
//
//  1. Guest behaviour is byte-identical with span tracing enabled — same
//     exit code, same output bytes, same cycle count (tracing is host-side
//     only and must never perturb the simulation).
//  2. Tracing-enabled wall time is reported next to the untraced wall time
//     so regressions in the instrumented hot path are visible. (The hard
//     ≤2% disabled-spans bound is enforced by stat_fastdecode's hot loop;
//     this bench reports the enabled-cost ratio for the full runtime.)
//
// Attribution tables print per workload, and every ledger category lands
// in BENCH_attribution.json via exportLedgerMetrics.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "squash/Telemetry.h"
#include "support/Span.h"

#include <chrono>

using namespace bench;
using namespace vea;
using namespace squash;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Builds the ledger for \p Run and dies loudly if it does not conserve.
CycleLedger checkedLedger(const SquashedRun &Run, const char *Workload,
                          const char *Outcome) {
  CycleLedger L = buildCycleLedger(Run);
  if (!L.conserves()) {
    std::fprintf(stderr,
                 "%s (%s): ledger does NOT conserve: attributed %llu of "
                 "%llu total cycles\n",
                 Workload, Outcome,
                 static_cast<unsigned long long>(L.attributed()),
                 static_cast<unsigned long long>(L.Total));
    std::exit(1);
  }
  return L;
}

} // namespace

int main() {
  std::printf("== Cycle attribution: conservation gate over the suite ==\n\n");
  auto Suite = prepareSuite();
  const double Theta = ThetaMid;

  std::vector<BenchRow> JsonRows;
  unsigned Conserved = 0, Checked = 0;
  std::vector<double> OverheadRatios;

  for (auto &P : Suite) {
    RunResult Base = runBaseline(P, P.W.TimingInput);

    Options Opts;
    Opts.Theta = Theta;
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();

    // Untraced reference run: behaviour check + ledger + wall time.
    const double T0 = nowSeconds();
    SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput);
    const double UntracedSeconds = nowSeconds() - T0;
    requireHalted(Run, Base, P.W.Name, "theta-mid");
    CycleLedger L = checkedLedger(Run, P.W.Name.c_str(), "halt");
    ++Checked;
    ++Conserved;

    // Limit-stop outcomes: the run ends wherever the budget lands, often
    // between a trap's setup charge and its decode charge. The identity
    // must hold there too.
    for (uint64_t Limit :
         {Run.Run.Instructions / 2 + 1, static_cast<uint64_t>(64)}) {
      SquashedRun Partial = runSquashed(SR.SP, P.W.TimingInput, Limit);
      checkedLedger(Partial, P.W.Name.c_str(), "limit-stop");
      ++Checked;
      ++Conserved;
    }

    // Modeled-icache outcome: the flat flush charge gives way to per-fetch
    // miss penalties. Behaviour (exit code, output) must be identical —
    // the cache is tag-only — and the ledger must conserve with the
    // IcacheMiss term carrying the new cycles.
    {
      Options IcOpts = Opts;
      IcOpts.Icache.Enabled = true;
      SquashResult IcSR = squashProgram(P.W.Prog, P.Prof, IcOpts).take();
      SquashedRun IcRun = runSquashed(IcSR.SP, P.W.TimingInput);
      requireHalted(IcRun, Base, P.W.Name, "icache");
      requireSameBehaviour(IcRun, Run, P.W.Name, "icache");
      CycleLedger IcL = checkedLedger(IcRun, P.W.Name.c_str(), "icache");
      if (IcL.IcacheFlush != 0 || IcL.IcacheMiss != IcRun.Run.IcacheMissCycles) {
        std::fprintf(stderr, "%s: icache ledger terms inconsistent\n",
                     P.W.Name.c_str());
        return 1;
      }
      ++Checked;
      ++Conserved;
    }

    // Traced run: identical guest behaviour, wall-time ratio.
    SpanTracer::instance().reset();
    SpanTracer::instance().setEnabled(true);
    const double T1 = nowSeconds();
    SquashedRun Traced = runSquashed(SR.SP, P.W.TimingInput);
    const double TracedSeconds = nowSeconds() - T1;
    SpanTracer::instance().setEnabled(false);
    requireSameBehaviour(Traced, Run, P.W.Name, "traced");
    if (Traced.Run.Cycles != Run.Run.Cycles) {
      std::fprintf(stderr, "%s: tracing perturbed the guest cycle count\n",
                   P.W.Name.c_str());
      return 1;
    }
    const uint64_t Spans = SpanTracer::instance().totalEmitted();
    const double Ratio =
        UntracedSeconds > 0 ? TracedSeconds / UntracedSeconds : 1.0;
    OverheadRatios.push_back(Ratio > 0 ? Ratio : 1.0);

    std::printf("%s\n", renderAttributionReport(L, P.W.Name).c_str());
    std::printf("  traced run: %llu spans, wall %.4fs vs %.4fs untraced "
                "(x%.3f)\n\n",
                static_cast<unsigned long long>(Spans), TracedSeconds,
                UntracedSeconds, Ratio);

    MetricsRegistry Reg;
    exportLedgerMetrics(Reg, L);
    Reg.setCounter("trace.spans", Spans);
    Reg.setGauge("trace.overhead_ratio", Ratio);
    Reg.setGauge("trace.untraced_seconds", UntracedSeconds);
    Reg.setGauge("trace.traced_seconds", TracedSeconds);
    JsonRows.emplace_back(P.W.Name, Reg.toJson());
  }

  {
    MetricsRegistry Reg;
    Reg.setCounter("attrib.runs_checked", Checked);
    Reg.setCounter("attrib.runs_conserved", Conserved);
    Reg.setGauge("trace.overhead_geomean", geomean(OverheadRatios));
    JsonRows.emplace_back("suite/summary", Reg.toJson());
  }
  char Verdict[160];
  std::snprintf(Verdict, sizeof(Verdict),
                "conservation: %u/%u run outcomes conserved; traced-run "
                "overhead geomean x%.3f",
                Conserved, Checked, geomean(OverheadRatios));
  return finishBench("attribution", JsonRows, Conserved == Checked, Verdict);
}
