//===- bench/fig3_buffer_bound.cpp - Figure 3 reproduction ----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Figure 3: "Effect of Buffer Size Bound on Code Size" — normalized overall
// code size as the buffer bound K sweeps 64..4096 bytes, for three cold
// thresholds and their mean. The paper's minimum sits at K = 256/512, with
// 512 preferred for speed (fewer inter-region transfers).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Figure 3: effect of the buffer size bound K on code size "
              "==\n\n");
  auto Suite = prepareSuite();
  const std::vector<uint32_t> Ks = {64, 128, 256, 512, 1024, 2048, 4096};
  const std::vector<double> Thetas = {0.0, ThetaLow, ThetaMid};

  std::printf("%-12s", "theta \\ K");
  for (uint32_t K : Ks)
    std::printf(" %8u", K);
  std::printf("\n");

  std::vector<BenchRow> Rows;
  std::vector<std::vector<double>> MeanPerK(Ks.size());
  for (double Theta : Thetas) {
    std::printf("%-12s", thetaLabel(Theta).c_str());
    vea::MetricsRegistry Reg;
    for (size_t KI = 0; KI != Ks.size(); ++KI) {
      std::vector<double> Sizes;
      for (auto &P : Suite) {
        Options Opts;
        Opts.Theta = Theta;
        Opts.BufferBoundBytes = Ks[KI];
        SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
        Sizes.push_back(1.0 - SR.SP.Footprint.reduction());
        MeanPerK[KI].push_back(Sizes.back());
      }
      Reg.setGauge("fig3.size.k" + std::to_string(Ks[KI]), geomean(Sizes));
      std::printf(" %8.4f", geomean(Sizes));
    }
    Rows.emplace_back("theta=" + thetaLabel(Theta), Reg.toJson());
    std::printf("\n");
  }

  std::printf("%-12s", "mean");
  size_t BestK = 0;
  double Best = 1e9;
  vea::MetricsRegistry MeanReg;
  for (size_t KI = 0; KI != Ks.size(); ++KI) {
    double M = geomean(MeanPerK[KI]);
    if (M < Best) {
      Best = M;
      BestK = KI;
    }
    MeanReg.setGauge("fig3.size.k" + std::to_string(Ks[KI]), M);
    std::printf(" %8.4f", M);
  }
  MeanReg.setCounter("fig3.best_k", Ks[BestK]);
  Rows.emplace_back("mean", MeanReg.toJson());
  std::printf("\n\nminimum at K = %u bytes (paper: minimum at K = 256/512; "
              "512 preferred because larger regions mean fewer decompressor "
              "calls).\n",
              Ks[BestK]);

  // Beyond the paper: the decode cache multiplies the buffer to
  // CacheSlots * K, so its size cost scales with both knobs. One row at
  // theta-mid and 4 slots shows where the extra slots stop paying for
  // themselves in footprint.
  std::printf("\n%-12s", "4-slot cache");
  vea::MetricsRegistry CacheReg;
  for (uint32_t K : Ks) {
    std::vector<double> Sizes;
    for (auto &P : Suite) {
      Options Opts;
      Opts.Theta = ThetaMid;
      Opts.BufferBoundBytes = K;
      Opts.CacheSlots = 4;
      Opts.ReuseBufferedRegion = true;
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
      Sizes.push_back(1.0 - SR.SP.Footprint.reduction());
    }
    CacheReg.setGauge("fig3.size.k" + std::to_string(K), geomean(Sizes));
    std::printf(" %8.4f", geomean(Sizes));
  }
  Rows.emplace_back("4-slot-cache", CacheReg.toJson());
  std::printf("\n(cache rows pay 4x the buffer words plus the slot map; "
              "compare against the theta-mid row above.)\n");
  std::string Path = writeBenchJson("fig3_buffer_bound", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
