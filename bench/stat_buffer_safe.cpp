//===- bench/stat_buffer_safe.cpp - Section 6.1 statistics ----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Section 6.1: the buffer-safety analysis lets ~12.5% of the calls issued
// from compressible regions skip restore-stub treatment on average, with
// gsm and g721_enc the best cases (>20% / 19%).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Section 6.1 statistic: buffer-safe call sites ==\n\n");
  auto Suite = prepareSuite();
  std::printf("%-10s %12s %16s %12s %14s\n", "program", "functions",
              "safe functions", "calls", "safe calls");
  std::vector<double> Fractions;
  std::vector<BenchRow> Rows;
  for (auto &P : Suite) {
    Options Opts;
    Opts.Theta = 0.0;
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
    const BufferSafeStats &S = SR.BufferSafe;
    double Frac = S.CallSitesFromRegions
                      ? static_cast<double>(S.SafeCallSitesFromRegions) /
                            S.CallSitesFromRegions
                      : 0.0;
    Fractions.push_back(1.0 + Frac);
    std::printf("%-10s %12u %15u %12u %9u (%4.1f%%)\n", P.W.Name.c_str(),
                S.Functions, S.SafeFunctions, S.CallSitesFromRegions,
                S.SafeCallSitesFromRegions, 100.0 * Frac);
    vea::MetricsRegistry Reg;
    Reg.setCounter("buffersafe.functions", S.Functions);
    Reg.setCounter("buffersafe.safe_functions", S.SafeFunctions);
    Reg.setCounter("buffersafe.region_call_sites", S.CallSitesFromRegions);
    Reg.setCounter("buffersafe.safe_region_call_sites",
                   S.SafeCallSitesFromRegions);
    Reg.setGauge("buffersafe.safe_fraction", Frac);
    Rows.emplace_back(P.W.Name, Reg.toJson());
  }
  std::printf("%-10s %57.1f%%\n", "mean",
              100.0 * (geomean(Fractions) - 1.0));
  std::printf("\npaper: ~12.5%% of compressible regions' calls benefit on "
              "average; gsm > 20%%, g721_enc ~19%%.\n");
  std::string Path = writeBenchJson("buffer_safe", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
