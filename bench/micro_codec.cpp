//===- bench/micro_codec.cpp - Codec microbenchmarks ----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// google-benchmark timings for the pieces on squash's runtime-critical
// path: canonical Huffman encode/decode, splitting-streams region
// encode/decode, and the simulator's interpreter loop. These are host-side
// costs; the *simulated* decompression cost is governed by the CostModel.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "huff/StreamCodec.h"
#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace squash;
using namespace vea;

namespace {

std::vector<std::pair<uint32_t, uint64_t>> skewedAlphabet(size_t N) {
  std::vector<std::pair<uint32_t, uint64_t>> Pairs;
  for (size_t I = 0; I != N; ++I)
    Pairs.push_back({static_cast<uint32_t>(I), 1 + 10000 / (I + 1)});
  return Pairs;
}

std::vector<MInst> syntheticRegion(size_t Len, uint64_t Seed) {
  Rng R(Seed);
  std::vector<MInst> Region;
  for (size_t I = 0; I != Len; ++I) {
    switch (R.nextBelow(4)) {
    case 0:
      Region.push_back(makeRRR(Opcode::Add, R.nextBelow(31), R.nextBelow(31),
                               R.nextBelow(31)));
      break;
    case 1:
      Region.push_back(makeMem(Opcode::Ldw, R.nextBelow(31), 30,
                               static_cast<int32_t>(R.nextBelow(64)) * 4));
      break;
    case 2:
      Region.push_back(makeRRI(Opcode::Addi, R.nextBelow(31),
                               R.nextBelow(31), R.nextBelow(256)));
      break;
    default:
      Region.push_back(
          makeBranch(Opcode::Beq, R.nextBelow(31),
                     static_cast<int32_t>(R.nextBelow(64)) - 32));
      break;
    }
  }
  return Region;
}

} // namespace

static void BM_HuffmanEncode(benchmark::State &State) {
  CanonicalCode C = CanonicalCode::build(skewedAlphabet(256));
  Rng R(1);
  std::vector<uint32_t> Message(4096);
  for (auto &S : Message)
    S = static_cast<uint32_t>(R.nextBelow(256));
  for (auto _ : State) {
    BitWriter W;
    for (uint32_t S : Message)
      C.encode(S, W);
    benchmark::DoNotOptimize(W.byteSize());
  }
  State.SetItemsProcessed(State.iterations() * Message.size());
}
BENCHMARK(BM_HuffmanEncode);

static void BM_HuffmanDecode(benchmark::State &State) {
  CanonicalCode C = CanonicalCode::build(skewedAlphabet(256));
  Rng R(1);
  BitWriter W;
  const size_t N = 4096;
  for (size_t I = 0; I != N; ++I)
    C.encode(static_cast<uint32_t>(R.nextBelow(256)), W);
  std::vector<uint8_t> Blob = W.takeBytes();
  for (auto _ : State) {
    BitReader Rd(Blob);
    uint64_t Sum = 0;
    for (size_t I = 0; I != N; ++I)
      Sum += C.decode(Rd);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_HuffmanDecode);

static void BM_RegionEncode(benchmark::State &State) {
  auto Region = syntheticRegion(static_cast<size_t>(State.range(0)), 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  for (auto _ : State) {
    BitWriter W;
    SC.encodeRegion(Region, W).check();
    benchmark::DoNotOptimize(W.byteSize());
  }
  State.SetItemsProcessed(State.iterations() * Region.size());
}
BENCHMARK(BM_RegionEncode)->Arg(32)->Arg(128)->Arg(512);

static void BM_RegionDecode(benchmark::State &State) {
  auto Region = syntheticRegion(static_cast<size_t>(State.range(0)), 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Region, W).check();
  std::vector<uint8_t> Blob = W.takeBytes();
  for (auto _ : State) {
    BitReader Rd(Blob);
    StreamCodecs::RegionDecoder Dec(SC, Rd);
    MInst I;
    uint64_t Count = 0;
    while (Dec.next(I))
      ++Count;
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * Region.size());
}
BENCHMARK(BM_RegionDecode)->Arg(32)->Arg(128)->Arg(512);

static void BM_InterpreterLoop(benchmark::State &State) {
  ProgramBuilder PB("bench");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 10000);
    F.li(2, 0);
    F.label("loop");
    F.add(2, 2, 1);
    F.xori(3, 2, 0x55);
    F.srli(4, 3, 3);
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Image Img = layoutProgram(PB.build());
  for (auto _ : State) {
    Machine M(Img);
    RunResult R = M.run();
    benchmark::DoNotOptimize(R.Instructions);
  }
  State.SetItemsProcessed(State.iterations() * 50003);
}
BENCHMARK(BM_InterpreterLoop);

namespace {

/// Console reporter that additionally records one BenchRow per run so the
/// micro benches emit the same BENCH_*.json shape as the figure benches.
class JsonRowReporter : public benchmark::ConsoleReporter {
public:
  bool ReportContext(const Context &Ctx) override {
    return benchmark::ConsoleReporter::ReportContext(Ctx);
  }

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      vea::MetricsRegistry Reg;
      Reg.setCounter("micro.iterations",
                     static_cast<uint64_t>(R.iterations));
      Reg.setGauge("micro.real_time_ns", R.GetAdjustedRealTime());
      Reg.setGauge("micro.cpu_time_ns", R.GetAdjustedCPUTime());
      auto It = R.counters.find("items_per_second");
      if (It != R.counters.end())
        Reg.setGauge("micro.items_per_second", It->second.value);
      Rows.emplace_back(R.benchmark_name(), Reg.toJson());
    }
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }

  std::vector<bench::BenchRow> Rows;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonRowReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  std::string Path = bench::writeBenchJson("micro_codec", Reporter.Rows);
  std::printf("wrote %zu row(s) to %s\n", Reporter.Rows.size(),
              Path.c_str());
  return 0;
}
