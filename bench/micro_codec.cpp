//===- bench/micro_codec.cpp - Codec microbenchmarks ----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// google-benchmark timings for the pieces on squash's runtime-critical
// path: canonical Huffman encode/decode, splitting-streams region
// encode/decode (bit-serial and table-driven), and the simulator's
// interpreter loop. Decode speed is reported in both currencies: host
// wall-clock ns/symbol (what the fast decoder improves) and the CostModel's
// simulated cycles/symbol (which is decoder-independent by design) — both
// land in BENCH_micro_codec.json.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "huff/FastDecoder.h"
#include "huff/StreamCodec.h"
#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Options.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace squash;
using namespace vea;

namespace {

std::vector<std::pair<uint32_t, uint64_t>> skewedAlphabet(size_t N) {
  std::vector<std::pair<uint32_t, uint64_t>> Pairs;
  for (size_t I = 0; I != N; ++I)
    Pairs.push_back({static_cast<uint32_t>(I), 1 + 10000 / (I + 1)});
  return Pairs;
}

/// Compiled code reuses a handful of hot registers far more often than the
/// rest of the file; uniform-random operands would flatten exactly the skew
/// the profile-guided codes exploit. Three out of four picks come from a
/// four-register hot set, the rest from the full file.
uint32_t pickReg(Rng &R) {
  static constexpr uint32_t Hot[4] = {1, 2, 3, 29};
  return R.nextBelow(4) ? Hot[R.nextBelow(4)] : R.nextBelow(31);
}

std::vector<MInst> syntheticRegion(size_t Len, uint64_t Seed) {
  Rng R(Seed);
  std::vector<MInst> Region;
  for (size_t I = 0; I != Len; ++I) {
    switch (R.nextBelow(4)) {
    case 0:
      Region.push_back(makeRRR(Opcode::Add, pickReg(R), pickReg(R),
                               pickReg(R)));
      break;
    case 1:
      // Stack/struct accesses cluster at small word-aligned offsets.
      Region.push_back(makeMem(Opcode::Ldw, pickReg(R), 30,
                               static_cast<int32_t>(R.nextBelow(8)) * 4));
      break;
    case 2:
      // Immediates follow the classic profile shape: mostly tiny
      // constants with a thin uniform tail.
      Region.push_back(makeRRI(Opcode::Addi, pickReg(R), pickReg(R),
                               R.nextBelow(5) ? R.nextBelow(8) : R.nextBelow(256)));
      break;
    default:
      // Branch targets are dominated by short forward hops.
      Region.push_back(makeBranch(Opcode::Beq, pickReg(R),
                                  static_cast<int32_t>(R.nextBelow(8)) + 1));
      break;
    }
  }
  return Region;
}

/// Tags a decode bench with the CostModel's per-instruction charge so the
/// JSON rows carry the simulated currency next to the measured wall clock.
void tagSimCycles(benchmark::State &State) {
  State.counters["sim_cycles_per_symbol"] = benchmark::Counter(
      static_cast<double>(squash::CostModel().CyclesPerDecodedInstr));
}

} // namespace

static void BM_HuffmanEncode(benchmark::State &State) {
  CanonicalCode C = CanonicalCode::build(skewedAlphabet(256));
  Rng R(1);
  std::vector<uint32_t> Message(4096);
  for (auto &S : Message)
    S = static_cast<uint32_t>(R.nextBelow(256));
  for (auto _ : State) {
    BitWriter W;
    for (uint32_t S : Message)
      C.encode(S, W);
    benchmark::DoNotOptimize(W.byteSize());
  }
  State.SetItemsProcessed(State.iterations() * Message.size());
}
BENCHMARK(BM_HuffmanEncode);

static void BM_HuffmanDecode(benchmark::State &State) {
  CanonicalCode C = CanonicalCode::build(skewedAlphabet(256));
  Rng R(1);
  BitWriter W;
  const size_t N = 4096;
  for (size_t I = 0; I != N; ++I)
    C.encode(static_cast<uint32_t>(R.nextBelow(256)), W);
  std::vector<uint8_t> Blob = W.takeBytes();
  for (auto _ : State) {
    BitReader Rd(Blob);
    uint64_t Sum = 0;
    for (size_t I = 0; I != N; ++I)
      Sum += C.decode(Rd);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_HuffmanDecode);

static void BM_RegionEncode(benchmark::State &State) {
  auto Region = syntheticRegion(static_cast<size_t>(State.range(0)), 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  for (auto _ : State) {
    BitWriter W;
    SC.encodeRegion(Region, W).check();
    benchmark::DoNotOptimize(W.byteSize());
  }
  State.SetItemsProcessed(State.iterations() * Region.size());
}
BENCHMARK(BM_RegionEncode)->Arg(32)->Arg(128)->Arg(512);

static void BM_RegionDecode(benchmark::State &State) {
  auto Region = syntheticRegion(static_cast<size_t>(State.range(0)), 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Region, W).check();
  std::vector<uint8_t> Blob = W.takeBytes();
  for (auto _ : State) {
    BitReader Rd(Blob);
    StreamCodecs::RegionDecoder Dec(SC, Rd);
    MInst I;
    uint64_t Count = 0;
    while (Dec.next(I))
      ++Count;
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * Region.size());
  tagSimCycles(State);
}
BENCHMARK(BM_RegionDecode)->Arg(32)->Arg(128)->Arg(512);

// The table-driven decoder over the same streams: range(0) is the region
// length, range(1) the probe-window width in bits. The simulated charge is
// identical to BM_RegionDecode's — only the host wall clock moves.
static void BM_FastRegionDecode(benchmark::State &State) {
  auto Region = syntheticRegion(static_cast<size_t>(State.range(0)), 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Region, W).check();
  std::vector<uint8_t> Blob = W.takeBytes();
  auto Tables = SC.fastTables(static_cast<unsigned>(State.range(1)));
  // Same chunked consumption as the runtime's region fill loop.
  std::array<MInst, 64> Chunk;
  for (auto _ : State) {
    FastDecoder Dec(SC, Tables, Blob.data(), Blob.size(), 0);
    uint64_t Count = 0;
    while (size_t Got = Dec.decodeRun(Chunk.data(), Chunk.size()))
      Count += Got;
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * Region.size());
  tagSimCycles(State);
}
BENCHMARK(BM_FastRegionDecode)
    ->Args({32, 11})
    ->Args({128, 11})
    ->Args({512, 11})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({512, 14});

// Move-to-front disables the fused instruction table, so this measures the
// per-stream symbol tables alone (the decoder's slowest configuration).
static void BM_FastRegionDecodeMTF(benchmark::State &State) {
  auto Region = syntheticRegion(static_cast<size_t>(State.range(0)), 7);
  StreamCodecs::Options CO;
  CO.MoveToFront = true;
  StreamCodecs SC = StreamCodecs::build({Region}, CO);
  BitWriter W;
  SC.encodeRegion(Region, W).check();
  std::vector<uint8_t> Blob = W.takeBytes();
  auto Tables = SC.fastTables(FastTables::DefaultBits);
  for (auto _ : State) {
    FastDecoder Dec(SC, Tables, Blob.data(), Blob.size(), 0);
    MInst I;
    uint64_t Count = 0;
    while (Dec.next(I))
      ++Count;
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * Region.size());
  tagSimCycles(State);
}
BENCHMARK(BM_FastRegionDecodeMTF)->Arg(512);

// One-time table construction cost at each supported window width (paid at
// image attach, then memoized per stream).
static void BM_FastTableBuild(benchmark::State &State) {
  auto Region = syntheticRegion(512, 7);
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  size_t Bytes = 0;
  for (auto _ : State) {
    auto Tables =
        FastTables::build(SC, static_cast<unsigned>(State.range(0)));
    Bytes = Tables->tableBytes();
    benchmark::DoNotOptimize(Tables);
  }
  State.counters["table_bytes"] =
      benchmark::Counter(static_cast<double>(Bytes));
}
BENCHMARK(BM_FastTableBuild)->Arg(4)->Arg(8)->Arg(11)->Arg(14);

static void BM_InterpreterLoop(benchmark::State &State) {
  ProgramBuilder PB("bench");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 10000);
    F.li(2, 0);
    F.label("loop");
    F.add(2, 2, 1);
    F.xori(3, 2, 0x55);
    F.srli(4, 3, 3);
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Image Img = layoutProgram(PB.build());
  for (auto _ : State) {
    Machine M(Img);
    RunResult R = M.run();
    benchmark::DoNotOptimize(R.Instructions);
  }
  State.SetItemsProcessed(State.iterations() * 50003);
}
BENCHMARK(BM_InterpreterLoop);

namespace {

/// Console reporter that additionally records one BenchRow per run so the
/// micro benches emit the same BENCH_*.json shape as the figure benches.
class JsonRowReporter : public benchmark::ConsoleReporter {
public:
  bool ReportContext(const Context &Ctx) override {
    return benchmark::ConsoleReporter::ReportContext(Ctx);
  }

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      vea::MetricsRegistry Reg;
      Reg.setCounter("micro.iterations",
                     static_cast<uint64_t>(R.iterations));
      Reg.setGauge("micro.real_time_ns", R.GetAdjustedRealTime());
      Reg.setGauge("micro.cpu_time_ns", R.GetAdjustedCPUTime());
      auto It = R.counters.find("items_per_second");
      if (It != R.counters.end()) {
        Reg.setGauge("micro.items_per_second", It->second.value);
        if (It->second.value > 0)
          Reg.setGauge("micro.wall_ns_per_symbol", 1e9 / It->second.value);
      }
      auto Sim = R.counters.find("sim_cycles_per_symbol");
      if (Sim != R.counters.end())
        Reg.setGauge("micro.sim_cycles_per_symbol", Sim->second.value);
      auto Tb = R.counters.find("table_bytes");
      if (Tb != R.counters.end())
        Reg.setGauge("micro.table_bytes", Tb->second.value);
      Rows.emplace_back(R.benchmark_name(), Reg.toJson());
    }
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }

  std::vector<bench::BenchRow> Rows;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonRowReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  std::string Path = bench::writeBenchJson("micro_codec", Reporter.Rows);
  std::printf("wrote %zu row(s) to %s\n", Reporter.Rows.size(),
              Path.c_str());
  return 0;
}
