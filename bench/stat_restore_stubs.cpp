//===- bench/stat_restore_stubs.cpp - Section 2.2 stub statistics ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Section 2.2's two statistics about restore stubs:
//  * the compile-time scheme would spend 13% (θ=0) to 27% (θ=1e-2-analog)
//    of the never-compressed code on static restore stubs — measured here
//    as 2 words per restore-stub call site;
//  * the runtime scheme needs few live stubs (paper: at most 9 across the
//    suite at the aggressive θ = 0.01) — measured on the timing runs.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Section 2.2 statistics: restore stubs ==\n\n");
  auto Suite = prepareSuite();
  const std::vector<double> Thetas = {0.0, ThetaMid};

  std::printf("%-10s", "program");
  for (double T : Thetas)
    std::printf("  static@%-6s max-live@%-6s", thetaLabel(T).c_str(),
                thetaLabel(T).c_str());
  std::printf("\n");

  std::vector<std::vector<double>> StaticPct(Thetas.size());
  std::vector<BenchRow> Rows;
  uint32_t MaxLiveOverall = 0;
  for (auto &P : Suite) {
    vea::MetricsRegistry Reg;
    std::printf("%-10s", P.W.Name.c_str());
    for (size_t TI = 0; TI != Thetas.size(); ++TI) {
      Options Opts;
      Opts.Theta = Thetas[TI];
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
      uint64_t StubSites = 0;
      for (const auto &RI : SR.SP.Regions)
        StubSites += RI.ExternalCalls;
      double Pct =
          SR.SP.Footprint.NeverCompressedWords
              ? 100.0 * 2.0 * StubSites /
                    SR.SP.Footprint.NeverCompressedWords
              : 0.0;
      StaticPct[TI].push_back(1.0 + Pct / 100.0);

      SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput);
      MaxLiveOverall =
          std::max(MaxLiveOverall, Run.Runtime.MaxLiveStubs);
      std::printf("  %12.1f%% %14u", Pct, Run.Runtime.MaxLiveStubs);
      const std::string Prefix = "stubs.theta_" + thetaLabel(Thetas[TI]) + ".";
      Reg.setCounter(Prefix + "static_sites", StubSites);
      Reg.setGauge(Prefix + "static_pct_of_nc", Pct);
      Reg.setCounter(Prefix + "max_live", Run.Runtime.MaxLiveStubs);
    }
    std::printf("\n");
    Rows.emplace_back(P.W.Name, Reg.toJson());
  }
  std::printf("%-10s", "mean");
  for (auto &V : StaticPct)
    std::printf("  %12.1f%% %14s", 100.0 * (geomean(V) - 1.0), "");
  std::printf("\n\nmax live restore stubs across the suite: %u (paper: 9 "
              "at theta = 0.01).\npaper static-stub cost: 13%% of "
              "never-compressed code at theta = 0, 27%% at 0.01.\n",
              MaxLiveOverall);
  std::string Path = writeBenchJson("restore_stubs", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
