//===- bench/fig7_size_and_time.cpp - Figure 7 reproduction ---------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Figure 7: "Effect of Profile-Guided Compression on Code Size and
// Execution Time" — for low thresholds, per benchmark + geometric mean:
// (a) code size relative to the squeezed baseline, (b) execution time on
// the *timing* inputs relative to the baseline. Paper anchors (geo-mean):
// sizes 0.863 / 0.842 / 0.812; times ~1.00 / 1.04 / 1.24 for
// θ = 0 / 1e-5 / 5e-5. See EXPERIMENTS.md for this repository's θ scale.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Figure 7: code size and execution time at low "
              "thresholds ==\n\n");
  auto Suite = prepareSuite();
  const std::vector<double> Thetas = {0.0, ThetaLow, ThetaMid};

  std::printf("%-10s |", "benchmark");
  for (double T : Thetas)
    std::printf(" size@%-7s", thetaLabel(T).c_str());
  std::printf(" |");
  for (double T : Thetas)
    std::printf(" time@%-7s", thetaLabel(T).c_str());
  std::printf("  decompressions\n");

  std::vector<BenchRow> Rows;
  std::vector<std::vector<double>> SizeR(Thetas.size()),
      TimeR(Thetas.size());
  for (auto &P : Suite) {
    vea::RunResult Base = runBaseline(P, P.W.TimingInput);
    std::printf("%-10s |", P.W.Name.c_str());
    std::vector<uint64_t> Decomps;
    std::vector<double> Times;
    vea::MetricsRegistry Reg;
    for (size_t TI = 0; TI != Thetas.size(); ++TI) {
      Options Opts;
      Opts.Theta = Thetas[TI];
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
      double Size = 1.0 - SR.SP.Footprint.reduction();
      SizeR[TI].push_back(Size);
      std::printf("     %7.3f", Size);

      SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput);
      if (Run.Run.Status != vea::RunStatus::Halted) {
        std::printf("  [RUN FAILED: %s]\n", Run.Run.FaultMessage.c_str());
        return 1;
      }
      double Time = static_cast<double>(Run.Run.Cycles) /
                    static_cast<double>(Base.Cycles);
      TimeR[TI].push_back(Time);
      Times.push_back(Time);
      Decomps.push_back(Run.Runtime.Decompressions);
      std::string Suffix = "theta_" + thetaLabel(Thetas[TI]);
      Reg.setGauge("fig7.size." + Suffix, Size);
      Reg.setGauge("fig7.time." + Suffix, Time);
      Reg.setCounter("fig7.decompressions." + Suffix,
                     Run.Runtime.Decompressions);
    }
    Rows.emplace_back(P.W.Name, Reg.toJson());
    std::printf(" |");
    for (double T : Times)
      std::printf("     %7.3f", T);
    std::printf("  ");
    for (uint64_t D : Decomps)
      std::printf(" %llu", (unsigned long long)D);
    std::printf("\n");
  }

  std::printf("%-10s |", "geo-mean");
  vea::MetricsRegistry MeanReg;
  for (size_t TI = 0; TI != Thetas.size(); ++TI) {
    MeanReg.setGauge("fig7.size.theta_" + thetaLabel(Thetas[TI]),
                     geomean(SizeR[TI]));
    std::printf("     %7.3f", geomean(SizeR[TI]));
  }
  std::printf(" |");
  for (size_t TI = 0; TI != Thetas.size(); ++TI) {
    MeanReg.setGauge("fig7.time.theta_" + thetaLabel(Thetas[TI]),
                     geomean(TimeR[TI]));
    std::printf("     %7.3f", geomean(TimeR[TI]));
  }
  Rows.emplace_back("geo-mean", MeanReg.toJson());
  std::printf("\n");
  std::string Path = writeBenchJson("fig7_size_and_time", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());

  std::printf("\npaper (Alpha/MediaBench, theta = 0 / 1e-5 / 5e-5): sizes "
              "0.863 / 0.842 / 0.812, times ~1.00 / 1.04 / 1.24.\n");
  return 0;
}
