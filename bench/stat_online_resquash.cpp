//===- bench/stat_online_resquash.cpp - Online vs offline re-squash -------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Closes the loop that bench/stat_drift leaves open: stat_drift shows an
// *offline* merged-profile re-squash recovers the trap cycles that
// profile drift (train on A, run on B) induces; this bench shows the
// ResquashController achieves the same recovery *online* — drift
// triggers a background re-squash, the new version hot-swaps in behind
// an epoch pin, survives probation, and the drifted input's trap cycles
// drop — while also reporting what the swap costs (publication pause,
// re-squash wall time, first-run decode warmup).
//
// The offline arm below uses the controller's exact merge recipe
// (unit-weight live profile scaled through the hardened scaleProfile,
// absolute θ budget, pinned cold cutoff), so the two arms build
// byte-identical images and online recovery must meet offline recovery
// on every workload. One metrics row per workload goes to
// BENCH_online_resquash.json; any violated criterion exits nonzero.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "sim/ProfileIO.h"
#include "squash/Adaptive.h"

using namespace bench;
using namespace squash;
using namespace vea;

int main() {
  std::printf("== Online re-squash: drift-triggered hot-swap vs offline ==\n\n");
  auto Suite = prepareSuite();
  std::printf("%-10s %12s %12s %12s %11s %11s %10s %9s\n", "program",
              "trapBefore", "offAfter", "onAfter", "offRecov", "onRecov",
              "swapNs", "resqSec");

  std::vector<BenchRow> Rows;
  bool CriteriaOk = true;
  for (auto &P : Suite) {
    Options Opts;
    Opts.Theta = ThetaMid;

    //--- Offline arm: squash, monitored cross run, merge, re-squash. ---//
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
    DriftMonitor CrossMon(SR.SP, P.Prof);
    SquashedRun Before =
        runSquashed(SR.SP, P.W.TimingInput, 2'000'000'000ull, 0, &CrossMon);
    const uint64_t TrapBefore = Before.Runtime.TrapCycles.sum();

    // The controller's recipe, verbatim (squash/Adaptive.cpp
    // buildCandidate): unit live profile, weight to the training total,
    // hardened scale+merge, absolute θ budget, pinned cutoff.
    const Profile LiveUnit = CrossMon.liveProfile(1.0);
    Profile Merged = P.Prof;
    Options Opts2 = Opts;
    if (LiveUnit.TotalInstructions > 0) {
      const double Weight =
          static_cast<double>(
              std::max<uint64_t>(P.Prof.TotalInstructions, 1)) /
          static_cast<double>(LiveUnit.TotalInstructions);
      Profile Scaled = scaleProfile(LiveUnit, Weight).take();
      Merged = mergeProfiles({P.Prof, Scaled}).take();
      Opts2.Theta =
          (Opts.Theta *
           static_cast<double>(
               std::max<uint64_t>(P.Prof.TotalInstructions, 1))) /
          static_cast<double>(
              std::max<uint64_t>(Merged.TotalInstructions, 1));
      Opts2.ColdCutoffCap = SR.Cold.FrequencyCutoff;
    }
    SquashResult SR2 = squashProgram(P.W.Prog, Merged, Opts2).take();
    SquashedRun OfflineAfter = runSquashed(SR2.SP, P.W.TimingInput);
    const uint64_t TrapOffline = OfflineAfter.Runtime.TrapCycles.sum();
    const int64_t OfflineRecovered = static_cast<int64_t>(TrapBefore) -
                                     static_cast<int64_t>(TrapOffline);

    //--- Online arm: the controller closes the same loop by itself. ---//
    AdaptiveConfig Cfg;
    Cfg.DriftThreshold = 0.0; // Trigger on the first evidence of drift.
    Cfg.MinEntriesForTrigger = 1;
    Cfg.MaxAttempts = 1;
    Cfg.ProbationRuns = 1;
    Cfg.ProbationTraps = UINT32_MAX;
    Cfg.RegressionTolerance = 1e9; // Measure recovery, not the verdict.
    std::unique_ptr<ResquashController> C =
        ResquashController::create(P.W.Prog, P.Prof, Opts, Cfg).take();

    SquashedRun OnlineBefore = C->serve(P.W.TimingInput); // Triggers.
    C->drain(120.0).check();
    SquashedRun OnlineProbation = C->serve(P.W.TimingInput);
    SquashedRun OnlineAfter = C->serve(P.W.TimingInput);
    const uint64_t TrapOnline = OnlineAfter.Runtime.TrapCycles.sum();
    const int64_t OnlineRecovered = static_cast<int64_t>(TrapBefore) -
                                    static_cast<int64_t>(TrapOnline);
    const AdaptiveStats St = C->stats();

    //--- Criteria. ---//
    auto Fail = [&](const char *What) {
      std::fprintf(stderr, "stat_online_resquash: %s: %s\n",
                   P.W.Name.c_str(), What);
      CriteriaOk = false;
    };
    for (const SquashedRun *Run :
         {&Before, &OfflineAfter, &OnlineBefore, &OnlineProbation,
          &OnlineAfter})
      if (Run->Run.Status != RunStatus::Halted)
        Fail("a run did not halt cleanly");
    for (const SquashedRun *Run :
         {&OfflineAfter, &OnlineBefore, &OnlineProbation, &OnlineAfter})
      if (Run->Output != Before.Output ||
          Run->Run.ExitCode != Before.Run.ExitCode)
        Fail("output diverged across versions");
    if (OnlineBefore.Runtime.TrapCycles.sum() != TrapBefore)
      Fail("online version 0 disagrees with the offline squash");
    if (OnlineRecovered < OfflineRecovered)
      Fail("online recovery fell short of offline recovery");
    if (OfflineRecovered > 0 && St.Publications == 0)
      Fail("drift was recoverable but nothing was published");

    MetricsRegistry Reg;
    Reg.setCounter("online_resquash.trap_cycles_before", TrapBefore);
    Reg.setCounter("online_resquash.trap_cycles_after_offline", TrapOffline);
    Reg.setCounter("online_resquash.trap_cycles_after_online", TrapOnline);
    Reg.setGauge("online_resquash.recovered_offline",
                 static_cast<double>(OfflineRecovered));
    Reg.setGauge("online_resquash.recovered_online",
                 static_cast<double>(OnlineRecovered));
    Reg.setGauge("online_resquash.warmup_decode_cycles",
                 static_cast<double>(
                     C->versionCount() > 1 ? C->versionWarmupDecodeCycles(1)
                                           : 0));
    C->exportMetrics(Reg);
    Rows.emplace_back(P.W.Name, Reg.toJson());

    std::printf("%-10s %12llu %12llu %12llu %11lld %11lld %10llu %9.3f\n",
                P.W.Name.c_str(), (unsigned long long)TrapBefore,
                (unsigned long long)TrapOffline,
                (unsigned long long)TrapOnline, (long long)OfflineRecovered,
                (long long)OnlineRecovered,
                (unsigned long long)St.SwapPauseNsTotal,
                St.LastResquashSeconds);
  }

  std::string Path = writeBenchJson("online_resquash", Rows);
  std::printf("\nwrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  if (!CriteriaOk) {
    std::fprintf(stderr,
                 "stat_online_resquash: acceptance criteria violated\n");
    return 1;
  }
  return 0;
}
