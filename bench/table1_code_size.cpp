//===- bench/table1_code_size.cpp - Table 1 reproduction ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Table 1: "Code size data for the benchmarks" — instructions in the input
// program (after unreachable-code/no-op removal) and after the squeeze-like
// compaction baseline. Paper sizes span 15k–91k (input) and 11.7k–65k
// (squeezed); our miniature suite is ~10x smaller but keeps the spread and
// the ~squeeze reduction role (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;

int main() {
  std::printf("== Table 1: code size data for the benchmarks ==\n\n");
  std::printf("%-10s %12s %12s %10s\n", "program", "input", "squeeze",
              "reduction");

  // The harness compacts during prepare; recompute the raw input size by
  // rebuilding each workload.
  auto Raw = vea::workloads::buildAllWorkloads();
  auto Suite = prepareSuite();
  std::vector<BenchRow> Rows;
  for (size_t I = 0; I != Suite.size(); ++I) {
    const auto &P = Suite[I];
    uint64_t In = P.Compact.InputInstructions;
    uint64_t Out = P.Compact.OutputInstructions;
    vea::MetricsRegistry Reg;
    Reg.setCounter("table1.input_instructions", In);
    Reg.setCounter("table1.squeeze_instructions", Out);
    Reg.setGauge("table1.reduction", 1.0 - double(Out) / double(In));
    Rows.emplace_back(P.W.Name, Reg.toJson());
    std::printf("%-10s %12llu %12llu %9.1f%%\n", P.W.Name.c_str(),
                (unsigned long long)In, (unsigned long long)Out,
                100.0 * (1.0 - double(Out) / double(In)));
  }
  (void)Raw;
  std::printf("\npaper: adpcm 18228/11690 ... pgp 83726/60003, rasta "
              "91359/65273; squeeze removes ~30%%.\n");
  std::string Path = writeBenchJson("table1_code_size", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
