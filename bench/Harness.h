//===- bench/Harness.h - Shared experiment harness -------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the experiment binaries (one per table/figure of
/// the paper): builds the 11-workload suite, compacts each program (the
/// squeeze baseline), lays it out, and collects its guiding profile, so
/// each bench only varies squash parameters.
///
/// Threshold note (see EXPERIMENTS.md): the paper's profiles run billions
/// of instructions on real hardware, ours run millions under simulation,
/// so the interesting θ range shifts upward by roughly the profile-length
/// ratio. ThetaSweep / ThetaLow / ThetaMid are this repository's
/// equivalents of the paper's {0 .. 1.0} sweep and {0, 1e-5, 5e-5}
/// focus points.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_BENCH_HARNESS_H
#define SQUASH_BENCH_HARNESS_H

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace bench {

struct Prepared {
  vea::workloads::Workload W;
  vea::CompactStats Compact;
  vea::Image Baseline;
  vea::Profile Prof;
};

/// Builds, compacts, lays out, and profiles every workload.
std::vector<Prepared> prepareSuite(double Scale = 1.0);

/// Runs \p P's baseline on an input; fatal if it does not halt.
vea::RunResult runBaseline(const Prepared &P,
                           const std::vector<uint8_t> &Input);

/// Fatal unless \p Run halted with the baseline's exit code. \p Context
/// names the configuration under test (codec, layout arm, ...) in the
/// message. Every acceptance bench verifies behaviour before it scores
/// anything; this is that check, hoisted.
void requireHalted(const squash::SquashedRun &Run, const vea::RunResult &Base,
                   const std::string &Workload, const std::string &Context);

/// Fatal unless \p Run reproduced \p Reference's guest-visible behaviour
/// exactly: status, exit code, and output bytes. Used to pin that a
/// configuration change (tracing, layout, icache model, codec) cannot
/// perturb what the guest computes.
void requireSameBehaviour(const squash::SquashedRun &Run,
                          const squash::SquashedRun &Reference,
                          const std::string &Workload,
                          const std::string &Context);

/// Geometric mean of a vector of positive values.
double geomean(const std::vector<double> &Values);

/// The cold-code thresholds used across the figure benches.
extern const std::vector<double> ThetaSweep; ///< Figure 4 / 6 sweep.
extern const double ThetaLow;  ///< This repo's analog of θ = 0.00001.
extern const double ThetaMid;  ///< This repo's analog of θ = 0.00005.

/// Formats a θ for table headers.
std::string thetaLabel(double Theta);

/// One machine-readable result row: a label (usually the workload name)
/// plus a metrics-registry JSON object.
using BenchRow = std::pair<std::string, std::string>;

/// Writes BENCH_<Name>.json in the working directory — a JSON array with
/// one `{"label": ..., "metrics": {...}}` object per row — and returns the
/// path. The second element of each row must already be a JSON object
/// (MetricsRegistry::toJson output). Fatal on I/O failure so benches
/// cannot silently produce nothing.
std::string writeBenchJson(const std::string &Name,
                           const std::vector<BenchRow> &Rows);

/// The shared bench epilogue: writes BENCH_<Name>.json, prints the row
/// count, the verdict line, and PASS/FAIL, and returns the process exit
/// code (0 on pass). Every gating bench ends with `return finishBench(...)`
/// so CI sees a uniform last line.
int finishBench(const std::string &Name, const std::vector<BenchRow> &Rows,
                bool Pass, const std::string &Verdict);

} // namespace bench

#endif // SQUASH_BENCH_HARNESS_H
