//===- bench/stat_codec_matrix.cpp - Per-region codec selection gate ------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The acceptance bench for codec plurality (DESIGN.md §17): squashes every
// workload under each codec configuration — always-Huffman (the paper's
// coder), always-pattern, always-context, and per-region "auto" selection —
// and scores each image on the selection objective
//
//   compressed bytes x modeled decode cycles
//
// (both stored size and re-expansion cost matter: a region pays its bytes
// once and its decode cycles on every buffer miss). Decode cycles come from
// codecDecodeCycles over the DecodeWork each region's cursor reports, the
// same formula the codec-select pass minimizes and the runtime charges, so
// this gate measures exactly what "auto" optimizes.
//
// Acceptance criteria (exit nonzero if either fails, so CI can gate):
//
//  1. "auto" is never worse than always-Huffman on bytes x cycles, for
//     every workload (the safety valve's contract).
//  2. On at least two workloads some region exists where a non-Huffman
//     codec beats Huffman by >= 5% on that region's bits x cycles — i.e.
//     the alternative coders earn their place rather than merely tying.
//
// Behaviour is verified before anything is scored: every squashed run must
// halt with the baseline's exit code, and output bytes must be identical
// across all four codec configurations.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "squash/CodecSelect.h"

#include <array>
#include <memory>

using namespace bench;
using namespace vea;
using namespace squash;

namespace {

const std::array<const char *, 4> Configs = {"huffman", "pattern", "context",
                                             "auto"};

/// Per-region measurement of one squashed image: payload bits and the
/// decode work its recorded codec reports.
struct RegionMeasure {
  uint64_t Bits = 0;
  DecodeWork Work;
};

/// Decodes every region of \p SP once through its codec cursor. Fatal on a
/// corrupt stream: this bench only sees freshly squashed images.
std::vector<RegionMeasure> measureRegions(const SquashedProgram &SP,
                                          const uint8_t *Mem) {
  const RuntimeLayout &L = SP.Layout;
  std::vector<RegionMeasure> Out;
  MInst I;
  for (size_t R = 0; R != SP.Regions.size(); ++R) {
    std::unique_ptr<RegionCursor> Cur =
        SP.makeRegionCursor(R, Mem + L.BlobBase, L.BlobBytes);
    while (Cur->next(I))
      ;
    if (!Cur->ok()) {
      std::fprintf(stderr, "region %zu: corrupt stream under codec %s\n", R,
                   codecKindName(SP.regionCodec(R)));
      std::exit(1);
    }
    RegionMeasure M;
    M.Bits = Cur->bitPosition() - SP.Regions[R].BitOffset;
    M.Work = Cur->work();
    Out.push_back(M);
  }
  return Out;
}

/// Modeled decode cycles summed over all regions.
uint64_t totalDecodeCycles(const SquashedProgram &SP,
                           const std::vector<RegionMeasure> &Ms) {
  uint64_t Cycles = 0;
  for (size_t R = 0; R != Ms.size(); ++R)
    Cycles += codecDecodeCycles(SP.Opts.Costs, SP.regionCodec(R), Ms[R].Work);
  return Cycles;
}

/// The whole-image objective: compressed bytes (payload plus every stored
/// side table) times total modeled decode cycles.
double objective(const SquashedProgram &SP,
                 const std::vector<RegionMeasure> &Ms) {
  return static_cast<double>(SP.Footprint.CompressedBytes) *
         static_cast<double>(totalDecodeCycles(SP, Ms));
}

/// A region's own bits x cycles under the codec its image recorded.
double regionObjective(const SquashedProgram &SP, const RegionMeasure &M,
                       size_t R) {
  return static_cast<double>(M.Bits) *
         static_cast<double>(
             codecDecodeCycles(SP.Opts.Costs, SP.regionCodec(R), M.Work));
}

} // namespace

int main() {
  std::printf("== Codec matrix: bytes x decode cycles per configuration ==\n\n");
  auto Suite = prepareSuite();
  const double Theta = 0.1; // Compresses regions on all 11 workloads.

  std::printf("-- objective (compressed bytes x modeled decode cycles, "
              "theta = %s) --\n\n",
              thetaLabel(Theta).c_str());
  std::printf("%-10s", "program");
  for (const char *Name : Configs)
    std::printf(" %12s", Name);
  std::printf("  %9s %6s\n", "auto/huff", "wins");

  std::vector<BenchRow> JsonRows;
  bool AutoNeverWorse = true;
  unsigned WorkloadsWithRegionWin = 0;

  for (auto &P : Suite) {
    RunResult Base = runBaseline(P, P.W.TimingInput);

    std::array<double, 4> Obj = {};
    std::vector<RegionMeasure> Measures[4];
    SquashedProgram Images[4];
    SquashedRun Reference;

    for (size_t C = 0; C != Configs.size(); ++C) {
      Options Opts;
      Opts.Theta = Theta;
      Opts.Codec = Configs[C];
      SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
      if (SR.Identity) {
        std::fprintf(stderr, "%s unexpectedly squashed to identity\n",
                     P.W.Name.c_str());
        return 1;
      }

      SquashedRun Run = runSquashed(SR.SP, P.W.TimingInput);
      requireHalted(Run, Base, P.W.Name, Configs[C]);
      if (C == 0)
        Reference = Run;
      else
        requireSameBehaviour(Run, Reference, P.W.Name, Configs[C]);

      Machine M(SR.SP.Img);
      Measures[C] = measureRegions(SR.SP, M.memData());
      Obj[C] = objective(SR.SP, Measures[C]);
      Images[C] = std::move(SR.SP);
    }

    // Gate 2's raw material: regions are formed before codec selection, so
    // the forced images cover identical region lists and compare per-slot.
    unsigned RegionWins = 0;
    const size_t NumRegions = Measures[0].size();
    if (Measures[1].size() == NumRegions &&
        Measures[2].size() == NumRegions) {
      for (size_t R = 0; R != NumRegions; ++R) {
        const double Huff = regionObjective(Images[0], Measures[0][R], R);
        const double Alt =
            std::min(regionObjective(Images[1], Measures[1][R], R),
                     regionObjective(Images[2], Measures[2][R], R));
        if (Alt <= 0.95 * Huff)
          ++RegionWins;
      }
    } else {
      std::fprintf(stderr, "%s: forced configs disagree on region count\n",
                   P.W.Name.c_str());
      return 1;
    }
    if (RegionWins)
      ++WorkloadsWithRegionWin;

    const double Ratio = Obj[0] > 0 ? Obj[3] / Obj[0] : 1.0;
    if (Obj[3] > Obj[0])
      AutoNeverWorse = false;

    std::printf("%-10s", P.W.Name.c_str());
    for (size_t C = 0; C != Configs.size(); ++C)
      std::printf(" %12.4g", Obj[C]);
    std::printf("  %9.4f %6u\n", Ratio, RegionWins);

    MetricsRegistry Reg;
    for (size_t C = 0; C != Configs.size(); ++C) {
      std::string Tag = std::string("codec.") + Configs[C];
      Reg.setGauge(Tag + ".objective", Obj[C]);
      Reg.setCounter(Tag + ".compressed_bytes",
                     Images[C].Footprint.CompressedBytes);
      Reg.setCounter(Tag + ".decode_cycles",
                     totalDecodeCycles(Images[C], Measures[C]));
    }
    uint64_t AutoByKind[NumCodecKinds] = {};
    for (size_t R = 0; R != Images[3].Regions.size(); ++R)
      ++AutoByKind[static_cast<unsigned>(Images[3].regionCodec(R))];
    for (unsigned K = 0; K != NumCodecKinds; ++K)
      Reg.setCounter("codec.auto.regions_" +
                         std::string(codecKindName(static_cast<CodecKind>(K))),
                     AutoByKind[K]);
    Reg.setGauge("codec.auto_vs_huffman", Ratio);
    Reg.setCounter("codec.region_wins", RegionWins);
    JsonRows.emplace_back(P.W.Name, Reg.toJson());
  }

  {
    MetricsRegistry Reg;
    Reg.setGauge("codec.auto_never_worse", AutoNeverWorse ? 1.0 : 0.0);
    Reg.setCounter("codec.workloads_with_region_win", WorkloadsWithRegionWin);
    JsonRows.emplace_back("suite/summary", Reg.toJson());
  }
  const bool WinsOk = WorkloadsWithRegionWin >= 2;
  char Verdict[160];
  std::snprintf(Verdict, sizeof(Verdict),
                "auto never worse than always-huffman: %s; workloads with a "
                ">=5%% per-region non-huffman win: %u (floor: 2)",
                AutoNeverWorse ? "yes" : "NO", WorkloadsWithRegionWin);
  return finishBench("codec_matrix", JsonRows, AutoNeverWorse && WinsOk,
                     Verdict);
}
