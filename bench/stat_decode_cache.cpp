//===- bench/stat_decode_cache.cpp - Decode-cache effectiveness -----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The paper's runtime keeps exactly one decompressed region resident, so a
// loop that alternates between regions re-decodes on every entry (the
// "always-thrash" behaviour of Section 2.2). This bench measures what the
// N-slot decode cache buys back, on two axes:
//
//  1. An alternating-region thrash microworkload (one more region than the
//     paper's single buffer can hold): region decodes, buffered hits, LRU
//     evictions, and the thrash ratio at 1..4 slots, against the paper
//     single-buffer baseline. The headline number is the decode-count
//     reduction at 4 slots (acceptance floor: >= 5x).
//  2. The real workload suite at theta-mid: thrash ratio paper-mode vs.
//     4-slot cache, plus the squash pipeline's per-stage wall times with
//     the serial and 4-thread region encoders.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ir/Builder.h"

using namespace bench;
using namespace vea;
using namespace squash;

namespace {

/// A hot driver loop whose guarded cold body calls three cold leaf
/// functions in rotation. With PackRegions off this squashes into exactly
/// four regions — the call block M and the leaves f0..f2 — and each
/// iteration produces the request stream M f0 M f1 M f2 M (the caller
/// re-enters through a restore stub after every callee return). Four
/// regions against the paper's one-region buffer is the worst case: every
/// single request misses.
Program thrashProgram(uint32_t Iterations) {
  ProgramBuilder PB("thrash");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.mov(20, 0); // Guard: 0 = profile run (cold body skipped).
    F.li(21, static_cast<int32_t>(Iterations));
    F.li(22, 0);
    F.label("loop");
    F.beq(20, "next");
    F.label("cold"); // Isolates the guarded body in its own (cold) block.
    for (int I = 0; I != 6; ++I)
      F.addi(1, 1, 1);
    F.call("f0");
    F.add(22, 22, 0);
    F.call("f1");
    F.add(22, 22, 0);
    F.call("f2");
    F.add(22, 22, 0);
    F.label("next");
    F.subi(21, 21, 1);
    F.bne(21, "loop");
    F.mov(16, 22);
    F.sys(SysFunc::PutWord);
    F.andi(16, 22, 0xFF);
    F.halt();
  }
  for (int FI = 0; FI != 3; ++FI) {
    FunctionBuilder F = PB.beginFunction("f" + std::to_string(FI));
    for (int I = 0; I != 12; ++I)
      F.addi(1, 1, 1);
    F.li(0, 7 * FI + 3);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

struct CacheRow {
  std::string Label;
  uint64_t Decodes;
  uint64_t Hits;
  uint64_t Evictions;
  double Thrash;
};

CacheRow measureThrash(std::string Label, const Program &Ref,
                       const Profile &Prof, uint32_t Slots, bool Reuse) {
  Program Prog = Ref; // squashProgram rewrites in place; keep Ref pristine.
  Options Opts;
  Opts.PackRegions = false;
  Opts.CacheSlots = Slots;
  Opts.ReuseBufferedRegion = Reuse;
  Opts.DirectResidentStubs = Reuse;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  if (SR.Identity) {
    std::fprintf(stderr, "thrash workload unexpectedly squashed to "
                         "identity\n");
    std::exit(1);
  }
  SquashedRun Run = runSquashed(SR.SP, {1});
  if (Run.Run.Status != RunStatus::Halted) {
    std::fprintf(stderr, "thrash run faulted: %s\n",
                 Run.Run.FaultMessage.c_str());
    std::exit(1);
  }
  return {std::move(Label), Run.Runtime.Decompressions,
          Run.Runtime.BufferedHits, Run.Runtime.Evictions,
          Run.Runtime.thrashRatio()};
}

} // namespace

int main() {
  std::printf("== Decode-cache statistics ==\n\n");

  // Part 1: the alternating-region thrash microworkload.
  constexpr uint32_t Iterations = 200;
  Program Ref = thrashProgram(Iterations);
  Profile Prof;
  {
    Program Prog = Ref;
    Prof = profileImage(layoutProgram(Prog), {0}).take();
  }

  std::printf("-- alternating-region thrash workload (4 regions, %u "
              "iterations) --\n\n",
              Iterations);
  std::vector<CacheRow> Rows;
  Rows.push_back(
      measureThrash("paper (1 buf)", Ref, Prof, 1, /*Reuse=*/false));
  for (uint32_t Slots : {1u, 2u, 3u, 4u})
    Rows.push_back(measureThrash("cache " + std::to_string(Slots) +
                                     " slot" + (Slots > 1 ? "s" : ""),
                                 Ref, Prof, Slots, true));

  const uint64_t BaseDecodes = Rows.front().Decodes;
  std::printf("%-16s %10s %10s %10s %8s %10s\n", "config", "decodes",
              "hits", "evictions", "thrash", "reduction");
  for (const CacheRow &R : Rows)
    std::printf("%-16s %10llu %10llu %10llu %7.1f%% %9.1fx\n",
                R.Label.c_str(),
                static_cast<unsigned long long>(R.Decodes),
                static_cast<unsigned long long>(R.Hits),
                static_cast<unsigned long long>(R.Evictions),
                100.0 * R.Thrash,
                R.Decodes ? static_cast<double>(BaseDecodes) / R.Decodes
                          : 0.0);

  const CacheRow &Four = Rows.back();
  double Reduction =
      Four.Decodes ? static_cast<double>(BaseDecodes) / Four.Decodes : 0.0;
  std::printf("\n4-slot cache decodes %.1fx fewer regions than the paper's "
              "single buffer (acceptance floor: 5x). %s\n\n",
              Reduction, Reduction >= 5.0 ? "PASS" : "FAIL");

  // Part 2: the real suite — thrash ratio and encoder wall times.
  auto Suite = prepareSuite();
  std::printf("-- workload suite at theta = %s --\n\n",
              thetaLabel(ThetaMid).c_str());
  std::printf("%-10s %10s %10s %10s %12s %12s\n", "program",
              "thrash@1buf", "thrash@4", "evict@4", "encode-1t(s)",
              "encode-4t(s)");
  std::vector<double> Paper, Cached;
  std::vector<BenchRow> JsonRows;
  for (const CacheRow &R : Rows) {
    vea::MetricsRegistry Reg;
    Reg.setCounter("cache.decodes", R.Decodes);
    Reg.setCounter("cache.hits", R.Hits);
    Reg.setCounter("cache.evictions", R.Evictions);
    Reg.setGauge("cache.thrash_ratio", R.Thrash);
    JsonRows.emplace_back("thrash/" + R.Label, Reg.toJson());
  }
  double Serial1 = 0.0, Parallel4 = 0.0;
  for (auto &P : Suite) {
    Options Base;
    Base.Theta = ThetaMid;
    Base.SquashThreads = 1;
    SquashResult PaperSR = squashProgram(P.W.Prog, P.Prof, Base).take();

    Options CacheOpts = Base;
    CacheOpts.CacheSlots = 4;
    CacheOpts.ReuseBufferedRegion = true;
    CacheOpts.DirectResidentStubs = true;
    CacheOpts.SquashThreads = 4;
    SquashResult CacheSR = squashProgram(P.W.Prog, P.Prof, CacheOpts).take();

    double PR = 1.0, CR = 0.0;
    uint64_t Evict = 0;
    if (!PaperSR.Identity) {
      SquashedRun R = runSquashed(PaperSR.SP, P.W.TimingInput);
      PR = R.Runtime.thrashRatio();
      Paper.push_back(PR > 0 ? PR : 1e-6);
    }
    if (!CacheSR.Identity) {
      SquashedRun R = runSquashed(CacheSR.SP, P.W.TimingInput);
      CR = R.Runtime.thrashRatio();
      Evict = R.Runtime.Evictions;
      Cached.push_back(CR > 0 ? CR : 1e-6);
    }
    Serial1 += PaperSR.Stats.EncodeSeconds;
    Parallel4 += CacheSR.Stats.EncodeSeconds;
    std::printf("%-10s %9.1f%% %9.1f%% %10llu %12.4f %12.4f\n",
                P.W.Name.c_str(), 100.0 * PR, 100.0 * CR,
                static_cast<unsigned long long>(Evict),
                PaperSR.Stats.EncodeSeconds, CacheSR.Stats.EncodeSeconds);
    vea::MetricsRegistry Reg;
    Reg.setGauge("cache.thrash_ratio_paper", PR);
    Reg.setGauge("cache.thrash_ratio_4slots", CR);
    Reg.setCounter("cache.evictions_4slots", Evict);
    PaperSR.Stats.exportMetrics(Reg, "squash.serial.time.");
    CacheSR.Stats.exportMetrics(Reg, "squash.4t.time.");
    JsonRows.emplace_back(P.W.Name, Reg.toJson());
  }
  std::printf("\nsuite geomean thrash ratio: %.1f%% (paper mode) vs %.1f%% "
              "(4 slots); total encode wall time %.4fs serial vs %.4fs with "
              "4 workers.\n",
              100.0 * geomean(Paper), 100.0 * geomean(Cached), Serial1,
              Parallel4);
  std::printf("note: encoded bytes are byte-identical across thread counts "
              "(asserted by the differential suite); only wall time "
              "changes.\n");
  std::string Path = writeBenchJson("decode_cache", JsonRows);
  std::printf("wrote %zu row(s) to %s\n", JsonRows.size(), Path.c_str());
  return 0;
}
