//===- bench/fig5_inputs.cpp - Figure 5 reproduction ----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Figure 5: "Inputs used for profiling and timing runs" — the table of
// profiling vs timing inputs with sizes. Ours are synthetic stand-ins for
// the MediaBench media files (see DESIGN.md §1), but play the same role:
// the profile is collected on one input and the timing run uses another,
// larger one that exercises extra code paths.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;

int main() {
  std::printf("== Figure 5: inputs used for profiling and timing runs "
              "==\n\n");
  std::printf("%-10s %-46s %9s  %-52s %9s\n", "program", "profiling input",
              "size(KB)", "timing input", "size(KB)");
  auto Suite = prepareSuite();
  std::vector<BenchRow> Rows;
  for (auto &P : Suite) {
    vea::MetricsRegistry Reg;
    Reg.setCounter("fig5.profiling_input_bytes", P.W.ProfilingInput.size());
    Reg.setCounter("fig5.timing_input_bytes", P.W.TimingInput.size());
    Rows.emplace_back(P.W.Name, Reg.toJson());
    std::printf("%-10s %-46s %9.1f  %-52s %9.1f\n", P.W.Name.c_str(),
                P.W.ProfilingInputName.c_str(),
                P.W.ProfilingInput.size() / 1024.0,
                P.W.TimingInputName.c_str(),
                P.W.TimingInput.size() / 1024.0);
  }
  std::printf("\n(inputs are deterministic synthetic media standing in for "
              "clinton.pcm, mlk_IHaveADream.pcm, baboon.tif, etc.)\n");
  std::string Path = writeBenchJson("fig5_inputs", Rows);
  std::printf("wrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
