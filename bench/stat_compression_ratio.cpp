//===- bench/stat_compression_ratio.cpp - Section 3 ratio check -----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Section 3: "The total space required by the compressed program is
// approximately 66% of its original size." Measured here by compressing
// every instruction (θ = 1) and comparing the blob (stream tables +
// payload) against the raw 4-byte encodings, plus per-stream detail.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace bench;
using namespace squash;

int main() {
  std::printf("== Section 3 statistic: splitting-streams compression ratio "
              "==\n\n");
  auto Suite = prepareSuite();

  std::printf("%-10s %10s %12s %12s %8s\n", "program", "instrs",
              "raw bytes", "blob bytes", "ratio");
  std::vector<double> Ratios;
  std::vector<BenchRow> Rows;
  const Prepared *Largest = nullptr;
  for (auto &P : Suite) {
    Options Opts;
    Opts.Theta = 1.0; // Compress everything.
    SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();
    uint64_t Stored = 0;
    for (const auto &RI : SR.SP.Regions)
      Stored += RI.StoredInstructions;
    double Raw = 4.0 * static_cast<double>(Stored);
    double Ratio = SR.SP.Footprint.CompressedBytes / Raw;
    Ratios.push_back(Ratio);
    std::printf("%-10s %10llu %12.0f %12u %7.1f%%\n", P.W.Name.c_str(),
                (unsigned long long)Stored, Raw,
                SR.SP.Footprint.CompressedBytes, 100.0 * Ratio);
    vea::MetricsRegistry Reg;
    Reg.setCounter("ratio.stored_instructions", Stored);
    Reg.setCounter("ratio.blob_bytes", SR.SP.Footprint.CompressedBytes);
    Reg.setGauge("ratio.raw_bytes", Raw);
    Reg.setGauge("ratio.compressed_over_raw", Ratio);
    Rows.emplace_back(P.W.Name, Reg.toJson());
    if (!Largest || P.Compact.OutputInstructions >
                        Largest->Compact.OutputInstructions)
      Largest = &P;
  }
  std::printf("%-10s %36s %7.1f%%   (paper: ~66%%)\n", "geo-mean", "",
              100.0 * geomean(Ratios));

  // Per-stream detail for the largest benchmark.
  Options Opts;
  Opts.Theta = 1.0;
  SquashResult SR = squashProgram(Largest->W.Prog, Largest->Prof, Opts).take();
  std::printf("\nper-stream detail (%s):\n", Largest->W.Name.c_str());
  std::printf("  %-10s %10s %10s %14s %12s\n", "stream", "symbols",
              "distinct", "payload bits", "table bits");
  for (const auto &St : SR.SP.Codecs.stats())
    std::printf("  %-10s %10llu %10llu %14llu %12llu\n",
                vea::fieldKindName(St.Kind), (unsigned long long)St.Symbols,
                (unsigned long long)St.Distinct,
                (unsigned long long)St.PayloadBits,
                (unsigned long long)St.TableBits);

  std::string Path = writeBenchJson("compression_ratio", Rows);
  std::printf("\nwrote %zu row(s) to %s\n", Rows.size(), Path.c_str());
  return 0;
}
