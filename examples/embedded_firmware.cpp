//===- examples/embedded_firmware.cpp - The paper's motivating scenario ---===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The introduction's motivating scenario: an embedded device (the paper
// cites the TI TMS320-C5x with 64 Kwords of program memory) whose firmware
// has outgrown the part. This example sets a program-memory budget, shows
// which workloads' code no longer fits, and then squashes each at
// increasing thresholds until it fits — the deployment decision squash
// exists for.
//
//   embedded_firmware [budget-bytes]
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace vea;
using namespace squash;

int main(int Argc, char **Argv) {
  // Default budget: ~72% of the largest compacted workload, so several
  // programs miss it and must be squashed to ship.
  uint32_t Budget = Argc > 1 ? static_cast<uint32_t>(std::atoi(Argv[1])) : 0;

  struct Row {
    workloads::Workload W;
    Image Baseline;
    Profile Prof;
    uint32_t CodeBytes;
  };
  std::vector<Row> Rows;
  uint32_t MaxBytes = 0;
  for (auto &W : workloads::buildAllWorkloads()) {
    Row R;
    R.W = std::move(W);
    compactProgram(R.W.Prog).take();
    R.Baseline = layoutProgram(R.W.Prog);
    R.Prof = profileImage(R.Baseline, R.W.ProfilingInput).take();
    R.CodeBytes = static_cast<uint32_t>(4 * R.W.Prog.instructionCount());
    MaxBytes = std::max(MaxBytes, R.CodeBytes);
    Rows.push_back(std::move(R));
  }
  if (Budget == 0)
    Budget = MaxBytes * 72 / 100;

  std::printf("== embedded deployment: program-memory budget %u bytes ==\n\n",
              Budget);
  std::printf("%-10s %10s %6s   %s\n", "firmware", "code(B)", "fits?",
              "after squash (theta needed, size, timing slowdown)");

  const double Thetas[] = {0.0, 1e-3, 1e-2, 0.1, 1.0};
  for (auto &R : Rows) {
    bool Fits = R.CodeBytes <= Budget;
    std::printf("%-10s %10u %6s   ", R.W.Name.c_str(), R.CodeBytes,
                Fits ? "yes" : "NO");
    if (Fits) {
      std::printf("(ships as is)\n");
      continue;
    }
    bool Shipped = false;
    for (double Theta : Thetas) {
      Options Opts;
      Opts.Theta = Theta;
      SquashResult SR = squashProgram(R.W.Prog, R.Prof, Opts).take();
      if (SR.Identity || SR.SP.Footprint.totalCodeBytes() > Budget)
        continue;
      // Confirm it still runs, and price the slowdown on the timing input.
      Machine MB(R.Baseline);
      MB.setInput(R.W.TimingInput);
      RunResult Base = MB.run();
      SquashedRun Run = runSquashed(SR.SP, R.W.TimingInput);
      if (Run.Run.Status != RunStatus::Halted ||
          Base.Status != RunStatus::Halted)
        continue;
      std::printf("theta=%g -> %u bytes, %.2fx time\n", Theta,
                  SR.SP.Footprint.totalCodeBytes(),
                  static_cast<double>(Run.Run.Cycles) /
                      static_cast<double>(Base.Cycles));
      Shipped = true;
      break;
    }
    if (!Shipped)
      std::printf("does not fit at any threshold\n");
  }

  std::printf("\nthe paper's pitch, in one table: firmware that misses the "
              "part's memory budget ships anyway,\npaying only for "
              "decompression of code it rarely runs.\n");
  return 0;
}
