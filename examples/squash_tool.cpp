//===- examples/squash_tool.cpp - Assemble, squash, and inspect -----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// A command-line front end over the whole pipeline, driven by VEA-32
// assembly source:
//
//   squash_tool [file.s] [--theta X] [--k BYTES] [--mtf] [--delta]
//               [--codec NAME] [--print-codec-choices]
//               [--layout] [--icache=LINES,SETS,WAYS]
//               [--input BYTES...] [--profile-out FILE] [--profile-in FILE]...
//               [--metrics-json FILE] [--metrics-prom FILE]
//               [--trace-out FILE] [--trace-capacity N]
//               [--span-trace-out FILE] [--flight-record-out FILE]
//               [--attrib-report]
//               [--drift-report FILE] [--live-profile-out FILE]
//               [--adapt N] [--drift-threshold X] [--probation-traps N]
//               [--print-pipeline] [--stop-after=PASS] [--disable-pass=PASS]...
//
// Assembles the program (or a built-in demo), compacts it, profiles it on
// the given input bytes (or loads and merges saved profiles), squashes it,
// prints the objdump-style inspection reports, and verifies that original
// and squashed runs agree. --metrics-json dumps every pipeline and runtime
// counter as one JSON object; --metrics-prom dumps the same registry in
// Prometheus text exposition format; --trace-out writes the verification
// run's event trace in Chrome trace format plus a per-region heat report
// to stdout. --drift-report attaches a DriftMonitor to the verification
// run and writes its JSON drift report; --live-profile-out writes the
// monitor's live heat as a loadable profile (merge it with the training
// profile via --profile-in to re-squash against observed behaviour).
// FILE may be "-" for stdout.
//
// Telemetry (DESIGN.md §18): --span-trace-out enables causal span tracing
// for the whole invocation (pipeline passes, runtime traps, prefetch and
// re-squash flows) and writes the snapshot as Chrome trace JSON with flow
// arrows; --flight-record-out arms the crash flight recorder and writes
// its postmortem dump (triggers + recent events + span snapshot) at exit;
// --attrib-report prints the cycle-attribution ledger of the verification
// run.
//
// --codec forces every region through one coder ("huffman", "pattern",
// "context") or lets the codec-select pass pick per region ("auto");
// --print-codec-choices prints the per-region choice table after the
// squash.
//
// Memory-aware fetch model (DESIGN.md §19): --layout turns on the
// profile-guided function-placement pass and prints the placement table;
// --icache=LINES,SETS,WAYS runs the verification under a simulated
// LINES-byte-line, SETS-set, WAYS-way I-cache (the flat flush charge is
// replaced by modeled fetch misses) and prints the miss counters.
//
// The pipeline surface (squash/Pipeline.h): --print-pipeline lists the
// standard passes in order and exits; --stop-after=PASS runs only the
// pipeline prefix ending at PASS and prints the pass trace plus whatever
// stats that prefix produced; --disable-pass=PASS (repeatable) skips a
// pass via Options::DisabledPasses — each disabled pass substitutes its
// conservative fallback, so the result still runs.
//
// --adapt N serves N requests of the long verification input through the
// multiversion ResquashController instead of the one-shot flow: drift
// past --drift-threshold (default 0.25) triggers a background re-squash
// that hot-swaps in, runs probation (--probation-traps), and rolls back
// on regression. Per-request version/trap lines, the version-transition
// event log, and the resquash.* counters are printed; --metrics-json /
// --metrics-prom include them.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "compact/Compact.h"
#include "link/ImageDisasm.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "sim/ProfileIO.h"
#include "squash/Adaptive.h"
#include "squash/DriftMonitor.h"
#include "squash/Driver.h"
#include "squash/Inspect.h"
#include "squash/Observability.h"
#include "squash/Pipeline.h"
#include "squash/Telemetry.h"
#include "support/Span.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace vea;
using namespace squash;

namespace {

/// A demo program with an obvious hot/cold split: a checksum loop over the
/// input plus an error handler and a rarely used transform.
const char *DemoSource = R"(
.program demo
.entry main

.func main
  li r9, 0              ; checksum
  li r10, 0             ; byte count
loop:
  sys getchar
  li r1, -1
  cmpeq r1, r0, r1
  bne r1, eof
  or r16, r0, r31
  bsr r26, mix
  add r9, r9, r0
  addi r10, r10, 1
  br loop
eof:
  li r1, 200
  cmpult r1, r10, r1
  bne r1, small
  bsr r26, rare_report  ; only for long inputs: cold under the profile
small:
  or r16, r9, r31
  sys putword
  andi r16, r9, 255
  sys halt

.func mix
  muli r0, r16, 31
  xori r0, r0, 0x5a
  andi r0, r0, 255
  ret

.func rare_report
  la r1, banner
  li r2, 4
rloop:
  ldb r16, 0(r1)
  sys putchar
  addi r1, r1, 1
  subi r2, r2, 1
  bne r2, rloop
  ret

.data banner
  .ascii "big!"
)";

struct Args {
  std::string SourcePath;
  double Theta = 0.0;
  uint32_t K = 512;
  bool Mtf = false;
  bool Delta = false;
  bool Disasm = false;
  std::string Codec = "huffman";
  bool PrintCodecChoices = false;
  bool ProfileLayout = false;
  IcacheConfig Icache; ///< Enabled by --icache=LINES,SETS,WAYS.
  std::vector<uint8_t> Input;
  std::string ProfileOut;
  std::vector<std::string> ProfileIn; ///< Repeatable; merged when several.
  std::string MetricsJson;
  std::string MetricsProm;
  std::string TraceOut;
  uint32_t TraceCapacity = RuntimeSystem::DefaultTraceCapacity;
  std::string SpanTraceOut;
  std::string FlightRecordOut;
  bool AttribReport = false;
  std::string DriftReportPath;
  std::string LiveProfileOut;
  bool PrintPipeline = false;
  std::string StopAfter;
  std::vector<std::string> DisabledPasses; ///< Repeatable.
  uint32_t AdaptRuns = 0; ///< --adapt N: serve N requests adaptively.
  double DriftThreshold = 0.25;
  uint32_t ProbationTraps = 64;
};

/// Matches "--flag=value" or "--flag value"; fills \p Value on a hit.
bool flagWithValue(const std::string &S, const char *Flag, int Argc,
                   char **Argv, int &I, std::string &Value) {
  std::string F = Flag;
  if (S.rfind(F + "=", 0) == 0) {
    Value = S.substr(F.size() + 1);
    return true;
  }
  if (S == F && I + 1 < Argc) {
    Value = Argv[++I];
    return true;
  }
  return false;
}

bool parseArgs(int Argc, char **Argv, Args &A) {
  for (int I = 1; I < Argc; ++I) {
    std::string S = Argv[I];
    std::string V;
    if (S == "--print-pipeline") {
      A.PrintPipeline = true;
    } else if (flagWithValue(S, "--stop-after", Argc, Argv, I, V)) {
      A.StopAfter = V;
    } else if (flagWithValue(S, "--disable-pass", Argc, Argv, I, V)) {
      A.DisabledPasses.push_back(V);
    } else if (S == "--theta" && I + 1 < Argc) {
      A.Theta = std::atof(Argv[++I]);
    } else if (S == "--k" && I + 1 < Argc) {
      A.K = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (S == "--mtf") {
      A.Mtf = true;
    } else if (S == "--delta") {
      A.Delta = true;
    } else if (flagWithValue(S, "--codec", Argc, Argv, I, V)) {
      CodecKind Parsed;
      if (V != "auto" && !codecKindByName(V, Parsed)) {
        std::fprintf(stderr,
                     "unknown codec '%s' (huffman, pattern, context, auto)\n",
                     V.c_str());
        return false;
      }
      A.Codec = V;
    } else if (S == "--print-codec-choices") {
      A.PrintCodecChoices = true;
    } else if (S == "--layout") {
      A.ProfileLayout = true;
    } else if (flagWithValue(S, "--icache", Argc, Argv, I, V)) {
      unsigned Lines = 0, Sets = 0, Ways = 0;
      if (std::sscanf(V.c_str(), "%u,%u,%u", &Lines, &Sets, &Ways) != 3 ||
          !Lines || !Sets || !Ways) {
        std::fprintf(stderr,
                     "--icache expects LINES,SETS,WAYS (e.g. 32,16,2)\n");
        return false;
      }
      A.Icache.Enabled = true;
      A.Icache.LineBytes = Lines;
      A.Icache.Sets = Sets;
      A.Icache.Ways = Ways;
    } else if (S == "--disasm") {
      A.Disasm = true;
    } else if (S == "--profile-out" && I + 1 < Argc) {
      A.ProfileOut = Argv[++I];
    } else if (S == "--profile-in" && I + 1 < Argc) {
      A.ProfileIn.push_back(Argv[++I]);
    } else if (S == "--metrics-json" && I + 1 < Argc) {
      A.MetricsJson = Argv[++I];
    } else if (S == "--metrics-prom" && I + 1 < Argc) {
      A.MetricsProm = Argv[++I];
    } else if (S == "--drift-report" && I + 1 < Argc) {
      A.DriftReportPath = Argv[++I];
    } else if (S == "--live-profile-out" && I + 1 < Argc) {
      A.LiveProfileOut = Argv[++I];
    } else if (S == "--adapt" && I + 1 < Argc) {
      A.AdaptRuns = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (S == "--drift-threshold" && I + 1 < Argc) {
      A.DriftThreshold = std::atof(Argv[++I]);
    } else if (S == "--probation-traps" && I + 1 < Argc) {
      A.ProbationTraps = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (S == "--trace-out" && I + 1 < Argc) {
      A.TraceOut = Argv[++I];
    } else if (S == "--trace-capacity" && I + 1 < Argc) {
      A.TraceCapacity = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (S == "--span-trace-out" && I + 1 < Argc) {
      A.SpanTraceOut = Argv[++I];
    } else if (S == "--flight-record-out" && I + 1 < Argc) {
      A.FlightRecordOut = Argv[++I];
    } else if (S == "--attrib-report") {
      A.AttribReport = true;
    } else if (S == "--input") {
      while (I + 1 < Argc && std::isdigit(Argv[I + 1][0]))
        A.Input.push_back(static_cast<uint8_t>(std::atoi(Argv[++I])));
    } else if (S[0] != '-') {
      A.SourcePath = S;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", S.c_str());
      return false;
    }
  }
  return true;
}

/// Writes the span trace and flight-recorder dump that --span-trace-out /
/// --flight-record-out asked for. Called once per exit path, after every
/// run of interest has executed.
bool writeTelemetry(const Args &A);

/// Writes \p Text to \p Path, or to stdout when Path is "-".
bool writeTextFile(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  return true;
}

bool writeTelemetry(const Args &A) {
  if (!A.SpanTraceOut.empty()) {
    std::vector<Span> Spans = SpanTracer::instance().snapshot();
    if (!writeTextFile(A.SpanTraceOut, exportSpansChromeTrace(Spans) + "\n"))
      return false;
    std::printf("span trace: %zu span(s) retained, %llu dropped -> %s\n",
                Spans.size(),
                (unsigned long long)SpanTracer::instance().totalDropped(),
                A.SpanTraceOut.c_str());
  }
  if (!A.FlightRecordOut.empty()) {
    if (!writeTextFile(A.FlightRecordOut,
                       FlightRecorder::instance().dumpJson() + "\n"))
      return false;
    std::printf("flight record: %llu trigger(s) -> %s\n",
                (unsigned long long)FlightRecorder::instance().triggerCount(),
                A.FlightRecordOut.c_str());
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  if (!parseArgs(Argc, Argv, A))
    return 2;

  // Telemetry switches flip on before any pipeline or runtime work so the
  // span trace covers the squash itself, not just the verification run.
  if (!A.SpanTraceOut.empty())
    SpanTracer::instance().setEnabled(true);
  if (!A.FlightRecordOut.empty())
    FlightRecorder::instance().arm();

  if (A.PrintPipeline) {
    std::printf("standard squash pipeline (in order):\n");
    for (const std::string &Name : standardPassNames())
      std::printf("  %s\n", Name.c_str());
    return 0;
  }

  std::string Source = DemoSource;
  if (!A.SourcePath.empty()) {
    std::ifstream In(A.SourcePath);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", A.SourcePath.c_str());
      return 2;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }
  if (A.Input.empty())
    for (int I = 0; I != 64; ++I)
      A.Input.push_back(static_cast<uint8_t>('a' + I % 13));

  ErrorOr<Program> ProgOr = assembleProgram(Source);
  if (!ProgOr) {
    std::fprintf(stderr, "assembly failed: %s\n", ProgOr.message().c_str());
    return 1;
  }
  Program Prog = ProgOr.take();

  CompactStats CS = compactProgram(Prog).take();
  std::printf("assembled %llu instructions (%llu after compaction)\n",
              (unsigned long long)CS.InputInstructions,
              (unsigned long long)CS.OutputInstructions);

  Image Baseline = layoutProgram(Prog);
  if (A.Disasm) {
    std::printf("baseline listing:\n%s\n",
                disassembleImage(Baseline).c_str());
  }
  Profile Prof;
  if (!A.ProfileIn.empty()) {
    std::vector<Profile> Loaded;
    for (const std::string &Path : A.ProfileIn) {
      Expected<Profile> POr = loadProfileFile(Path);
      if (!POr) {
        std::fprintf(stderr, "%s\n", POr.status().toString().c_str());
        return 1;
      }
      Loaded.push_back(std::move(POr.get()));
    }
    Expected<Profile> MOr = mergeProfiles(Loaded);
    if (!MOr) {
      std::fprintf(stderr, "%s\n", MOr.status().toString().c_str());
      return 1;
    }
    Prof = std::move(MOr.get());
    std::printf("profile: %llu instructions merged from %zu file(s)\n\n",
                (unsigned long long)Prof.TotalInstructions,
                A.ProfileIn.size());
  } else {
    Prof = profileImage(Baseline, A.Input).take();
    std::printf("profile: %llu instructions on a %zu-byte input\n\n",
                (unsigned long long)Prof.TotalInstructions, A.Input.size());
  }
  if (!A.ProfileOut.empty()) {
    if (Status St = saveProfileFile(Prof, A.ProfileOut); !St.ok()) {
      std::fprintf(stderr, "%s\n", St.toString().c_str());
      return 1;
    }
    std::printf("profile saved to %s\n", A.ProfileOut.c_str());
  }

  Options Opts;
  Opts.Theta = A.Theta;
  Opts.BufferBoundBytes = A.K;
  Opts.MoveToFront = A.Mtf;
  Opts.DeltaDisplacements = A.Delta;
  Opts.Codec = A.Codec;
  Opts.ProfileLayout = A.ProfileLayout;
  Opts.Icache = A.Icache;
  Opts.DisabledPasses = A.DisabledPasses;

  if (!A.StopAfter.empty()) {
    // Prefix run: drive the pass manager directly and report the state the
    // prefix produced instead of squashing end-to-end.
    if (std::string Err = Prog.verify(); !Err.empty()) {
      std::fprintf(stderr, "program does not verify: %s\n", Err.c_str());
      return 1;
    }
    SquashResult PR;
    PipelineContext Ctx(Prog, Prof, Opts, PR);
    PassManager PM;
    buildStandardPipeline(PM);
    if (Status St = PM.runUntil(Ctx, A.StopAfter); !St.ok()) {
      std::fprintf(stderr, "%s\n", St.toString().c_str());
      return 1;
    }
    std::printf("pipeline stopped after '%s' (%zu of %zu passes)\n\n",
                A.StopAfter.c_str(), PR.PassTrace.size(), PM.size());
    std::fputs(formatPassTrace(PR.PassTrace).c_str(), stdout);
    std::printf("\ncold: %llu of %llu instructions (frequency cutoff %llu)\n",
                (unsigned long long)PR.Cold.ColdInstructions,
                (unsigned long long)PR.Cold.TotalInstructions,
                (unsigned long long)PR.Cold.FrequencyCutoff);
    std::printf("regions: %llu packed (%llu before packing), %llu "
                "compressible instructions\n",
                (unsigned long long)PR.Regions.PackedRegions,
                (unsigned long long)PR.Regions.InitialRegions,
                (unsigned long long)PR.Regions.CompressibleInstructions);
    if (!A.MetricsJson.empty() || !A.MetricsProm.empty()) {
      MetricsRegistry Reg;
      collectSquashMetrics(Reg, PR);
      if (!A.MetricsJson.empty() &&
          !writeTextFile(A.MetricsJson, Reg.toJson() + "\n"))
        return 1;
      if (!A.MetricsProm.empty() &&
          !writeTextFile(A.MetricsProm, Reg.toPrometheus()))
        return 1;
    }
    return writeTelemetry(A) ? 0 : 1;
  }

  if (A.AdaptRuns > 0) {
    // Adaptive serving: the controller owns the image. Each request runs
    // against the pinned active version; drift past the threshold kicks
    // off a background re-squash that hot-swaps in behind the epoch pin.
    AdaptiveConfig Cfg;
    Cfg.DriftThreshold = A.DriftThreshold;
    Cfg.ProbationTraps = A.ProbationTraps;
    // Demo programs trap a handful of times per request; let the drift
    // threshold be the sole trigger gate rather than the entry-count one.
    Cfg.MinEntriesForTrigger = 1;
    Expected<std::unique_ptr<ResquashController>> COr =
        ResquashController::create(Prog, Prof, Opts, Cfg);
    if (!COr) {
      std::fprintf(stderr, "%s\n", COr.status().toString().c_str());
      return 1;
    }
    std::unique_ptr<ResquashController> C = COr.take();

    // Serve the long input the one-shot path uses for verification: it
    // exercises the cold path, so it drifts away from the training input.
    std::vector<uint8_t> LongInput;
    for (int I = 0; I != 400; ++I)
      LongInput.push_back(static_cast<uint8_t>('A' + I % 23));
    Machine M1(Baseline);
    M1.setInput(LongInput);
    RunResult R1 = M1.run();

    bool Ok = R1.Status == RunStatus::Halted;
    std::printf("serving %u request(s), drift threshold %g, probation %u "
                "trap(s)\n",
                A.AdaptRuns, Cfg.DriftThreshold, Cfg.ProbationTraps);
    for (uint32_t I = 0; I != A.AdaptRuns; ++I) {
      uint32_t V = C->activeVersion();
      SquashedRun R = C->serve(LongInput);
      Ok = Ok && R.Run.Status == RunStatus::Halted &&
           R.Run.ExitCode == R1.ExitCode;
      std::printf("  request %2u: version %u (%s), exit %u, %llu trap "
                  "cycle(s), %llu decompression(s)\n",
                  I, V, versionStateName(C->versionState(V)), R.Run.ExitCode,
                  (unsigned long long)R.Runtime.TrapCycles.sum(),
                  (unsigned long long)R.Runtime.Decompressions);
    }
    if (Status St = C->drain(120.0); !St.ok())
      std::fprintf(stderr, "%s\n", St.toString().c_str());

    std::printf("\nversion transitions:\n");
    for (const AdaptiveEvent &E : C->events())
      std::printf("  #%llu %s v%u\n", (unsigned long long)E.Seq,
                  adaptiveEventKindName(E.K), E.Version);
    const AdaptiveStats St = C->stats();
    std::printf("\nresquash: %llu attempt(s), %llu publication(s), %llu "
                "rollback(s), %llu failure(s); active version %u of %u -> "
                "%s\n",
                (unsigned long long)St.Attempts,
                (unsigned long long)St.Publications,
                (unsigned long long)St.Rollbacks,
                (unsigned long long)St.Failures, C->activeVersion(),
                C->versionCount(), Ok ? "OK" : "MISMATCH");

    if (!A.MetricsJson.empty() || !A.MetricsProm.empty()) {
      MetricsRegistry Reg;
      C->exportMetrics(Reg);
      if (!A.MetricsJson.empty() &&
          !writeTextFile(A.MetricsJson, Reg.toJson() + "\n"))
        return 1;
      if (!A.MetricsProm.empty() &&
          !writeTextFile(A.MetricsProm, Reg.toPrometheus()))
        return 1;
    }
    if (!writeTelemetry(A))
      return 1;
    return Ok ? 0 : 1;
  }

  Expected<SquashResult> SROr = squashProgram(Prog, Prof, Opts);
  if (!SROr) {
    std::fprintf(stderr, "squash failed: %s\n",
                 SROr.status().toString().c_str());
    return 1;
  }
  SquashResult SR = SROr.take();
  if (SR.Identity) {
    std::printf("nothing profitable to compress at theta=%g\n", A.Theta);
    if (!A.MetricsJson.empty() || !A.MetricsProm.empty()) {
      MetricsRegistry Reg;
      collectSquashMetrics(Reg, SR);
      if (!A.MetricsJson.empty() &&
          !writeTextFile(A.MetricsJson, Reg.toJson() + "\n"))
        return 1;
      if (!A.MetricsProm.empty() &&
          !writeTextFile(A.MetricsProm, Reg.toPrometheus()))
        return 1;
    }
    if (!A.DriftReportPath.empty() || !A.LiveProfileOut.empty()) {
      // No regions means no traps to observe: emit the empty report /
      // profile so downstream consumers still find well-formed files.
      DriftMonitor Mon(SR.SP, Prof);
      if (!A.DriftReportPath.empty() &&
          !writeTextFile(A.DriftReportPath, Mon.reportJson() + "\n"))
        return 1;
      if (!A.LiveProfileOut.empty()) {
        if (Status St = saveProfileFile(Mon.liveProfile(), A.LiveProfileOut);
            !St.ok()) {
          std::fprintf(stderr, "%s\n", St.toString().c_str());
          return 1;
        }
      }
    }
    return writeTelemetry(A) ? 0 : 1;
  }

  std::fputs(formatSegmentMap(SR.SP).c_str(), stdout);
  std::printf("\n");
  std::fputs(formatRegionTable(SR.SP).c_str(), stdout);
  std::printf("\n");
  if (A.PrintCodecChoices) {
    std::printf("codec choices (--codec %s):\n", A.Codec.c_str());
    for (unsigned R = 0; R != SR.SP.Regions.size(); ++R)
      std::printf("  region %-4u %s\n", R,
                  codecKindName(SR.SP.regionCodec(R)));
    std::printf("\n");
  }
  if (A.ProfileLayout) {
    std::fputs(formatFunctionLayout(SR.SP).c_str(), stdout);
    std::printf("\n");
  }
  std::fputs(formatEntryStubs(SR.SP).c_str(), stdout);
  std::printf("\nregion 0 stored code:\n");
  std::fputs(formatRegion(SR.SP, 0).c_str(), stdout);

  // Verify equivalence on a *longer* input, which exercises the cold path.
  std::vector<uint8_t> LongInput;
  for (int I = 0; I != 400; ++I)
    LongInput.push_back(static_cast<uint8_t>('A' + I % 23));
  Machine M1(Baseline);
  M1.setInput(LongInput);
  RunResult R1 = M1.run();
  bool WantTrace = !A.TraceOut.empty();
  bool WantDrift = !A.DriftReportPath.empty() || !A.LiveProfileOut.empty();
  DriftMonitor Mon(SR.SP, Prof);
  SquashedRun R2 = runSquashed(SR.SP, LongInput, 2'000'000'000ull,
                               WantTrace ? A.TraceCapacity : 0,
                               WantDrift ? &Mon : nullptr);
  bool Ok = R1.Status == RunStatus::Halted &&
            R2.Run.Status == RunStatus::Halted &&
            R1.ExitCode == R2.Run.ExitCode;
  std::printf("\nverification on a 400-byte input: original exit %u, "
              "squashed exit %u, %llu decompressions -> %s\n",
              R1.ExitCode, R2.Run.ExitCode,
              (unsigned long long)R2.Runtime.Decompressions,
              Ok ? "OK" : "MISMATCH");
  if (A.Icache.Enabled)
    std::printf("i-cache (%uB x %u sets x %u ways): %llu fetches, %llu "
                "misses (%.2f%%), %llu miss cycles\n",
                A.Icache.LineBytes, A.Icache.Sets, A.Icache.Ways,
                (unsigned long long)R2.Run.IcacheFetches,
                (unsigned long long)R2.Run.IcacheMisses,
                R2.Run.IcacheFetches
                    ? 100.0 * static_cast<double>(R2.Run.IcacheMisses) /
                          static_cast<double>(R2.Run.IcacheFetches)
                    : 0.0,
                (unsigned long long)R2.Run.IcacheMissCycles);

  if (WantTrace) {
    if (!writeTextFile(A.TraceOut,
                       exportChromeTrace(R2.Trace, R2.TraceDropped) + "\n"))
      return 1;
    std::printf("\ntrace: %zu event(s) retained, %llu dropped -> %s\n",
                R2.Trace.size(), (unsigned long long)R2.TraceDropped,
                A.TraceOut.c_str());
    std::printf("region heat:\n%s",
                renderRegionHeatReport(buildRegionHeatReport(R2.Trace))
                    .c_str());
  }
  if (A.AttribReport)
    std::printf("\n%s",
                renderAttributionReport(buildCycleLedger(R2),
                                        "verification run")
                    .c_str());
  if (WantDrift) {
    DriftReport Rep = Mon.report();
    std::printf("\ndrift: score %.3f, top-%u overlap %.3f, %u/%u regions "
                "touched, %zu mispredicted cold\n",
                Rep.DriftScore, DriftConfig{}.TopK, Rep.TopKOverlap,
                Rep.RegionsTouched, Rep.RegionsTotal,
                Rep.MispredictedCold.size());
    if (!A.DriftReportPath.empty() &&
        !writeTextFile(A.DriftReportPath, Mon.reportJson() + "\n"))
      return 1;
    if (!A.LiveProfileOut.empty()) {
      if (Status St = saveProfileFile(Mon.liveProfile(), A.LiveProfileOut);
          !St.ok()) {
        std::fprintf(stderr, "%s\n", St.toString().c_str());
        return 1;
      }
      std::printf("live profile saved to %s\n", A.LiveProfileOut.c_str());
    }
  }
  if (!A.MetricsJson.empty() || !A.MetricsProm.empty()) {
    MetricsRegistry Reg;
    collectSquashMetrics(Reg, SR);
    collectRunMetrics(Reg, R2);
    if (WantDrift)
      Mon.report().exportMetrics(Reg);
    if (!A.MetricsJson.empty() &&
        !writeTextFile(A.MetricsJson, Reg.toJson() + "\n"))
      return 1;
    if (!A.MetricsProm.empty() &&
        !writeTextFile(A.MetricsProm, Reg.toPrometheus()))
      return 1;
  }
  if (!writeTelemetry(A))
    return 1;
  return Ok ? 0 : 1;
}
