//===- examples/quickstart.cpp - End-to-end squash walkthrough ------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Builds one workload, compacts it (the squeeze baseline), profiles it,
// squashes it at a cold-code threshold, and runs the squashed binary on
// both inputs, verifying output equivalence and printing the footprint
// breakdown — the whole pipeline in one file.
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace vea;
using namespace squash;

static bool runAndCompare(const char *Label, const Image &Baseline,
                          const SquashedProgram &SP,
                          const std::vector<uint8_t> &Input) {
  Machine M(Baseline);
  M.setInput(Input);
  RunResult Orig = M.run();

  Machine M2(SP.Img);
  RuntimeSystem RT(SP);
  RT.attach(M2).check();
  M2.setInput(Input);
  RunResult R2 = M2.run();
  bool Ok = Orig.Status == RunStatus::Halted &&
            R2.Status == RunStatus::Halted &&
            Orig.ExitCode == R2.ExitCode && M.output() == M2.output();

  std::printf("  %-10s original: %llu instrs, %llu cycles | squashed: %llu "
              "instrs, %llu cycles | decompressions: %llu | %s\n",
              Label, (unsigned long long)Orig.Instructions,
              (unsigned long long)Orig.Cycles,
              (unsigned long long)R2.Instructions,
              (unsigned long long)R2.Cycles,
              (unsigned long long)RT.stats().Decompressions,
              Ok ? "outputs MATCH" : "OUTPUT MISMATCH");
  if (!Ok) {
    std::printf("    original: status=%d exit=%u fault=%s out=%zu bytes\n",
                (int)Orig.Status, Orig.ExitCode, Orig.FaultMessage.c_str(),
                M.output().size());
    std::printf("    squashed: status=%d exit=%u fault=%s out=%zu bytes\n",
                (int)R2.Status, R2.ExitCode, R2.FaultMessage.c_str(),
                M2.output().size());
  }
  return Ok;
}

int main() {
  std::printf("== squash quickstart: profile-guided code compression ==\n\n");

  // 1. Build a workload (a miniature IMA ADPCM codec).
  workloads::Workload W = workloads::buildAdpcm(0.25);
  std::printf("workload %s: %llu instructions as built\n", W.Name.c_str(),
              (unsigned long long)W.Prog.instructionCount());

  // 2. Compact it (the squeeze baseline of the paper).
  CompactStats CS = compactProgram(W.Prog).take();
  std::printf("after compaction: %llu instructions "
              "(%llu unreachable blocks removed)\n",
              (unsigned long long)CS.OutputInstructions,
              (unsigned long long)CS.UnreachableBlocksRemoved);

  // 3. Lay it out and collect the execution profile on the profiling
  //    input.
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();
  std::printf("profile: %llu instructions executed\n\n",
              (unsigned long long)Prof.TotalInstructions);

  // 4. Squash at a low cold-code threshold.
  Options Opts;
  Opts.Theta = 0.0;
  SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();
  const FootprintBreakdown &FB = SR.SP.Footprint;
  std::printf("squash @ theta=0: cold %.1f%% of code, %llu regions\n",
              100.0 * SR.Cold.coldFraction(),
              (unsigned long long)SR.Regions.PackedRegions);
  std::printf("footprint: never-compressed %u w | stubs %u w | decomp %u w "
              "| table %u w | stub area %u w | buffer %u w | compressed %u "
              "B\n",
              FB.NeverCompressedWords, FB.EntryStubWords,
              FB.DecompressorWords, FB.OffsetTableWords, FB.StubAreaWords,
              FB.BufferWords, FB.CompressedBytes);
  std::printf("code size: %u -> %u bytes (%.1f%% reduction)\n\n",
              FB.OriginalCodeBytes, FB.totalCodeBytes(),
              100.0 * FB.reduction());

  // 5. Execute and verify on both inputs.
  bool Ok = runAndCompare("profiling", Baseline, SR.SP, W.ProfilingInput);
  Ok &= runAndCompare("timing", Baseline, SR.SP, W.TimingInput);

  std::printf("\n%s\n", Ok ? "quickstart PASSED" : "quickstart FAILED");
  return Ok ? 0 : 1;
}
