//===- examples/threshold_explorer.cpp - Per-workload θ exploration -------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// An interactive-style report for one benchmark: how the cold-code
// threshold θ moves every quantity the paper discusses — cold fraction,
// region count, footprint breakdown, decompressor traffic, and the
// size/time trade-off on the timing input.
//
//   threshold_explorer [workload-name]
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace vea;
using namespace squash;

int main(int Argc, char **Argv) {
  const char *Want = Argc > 1 ? Argv[1] : "gsm";
  workloads::Workload W;
  bool Found = false;
  for (auto &Candidate : workloads::buildAllWorkloads()) {
    if (Candidate.Name == Want) {
      W = std::move(Candidate);
      Found = true;
      break;
    }
  }
  if (!Found) {
    std::fprintf(stderr,
                 "unknown workload '%s' (try adpcm, epic, g721_dec, "
                 "g721_enc, gsm, jpeg_dec, jpeg_enc, mpeg2dec, mpeg2enc, "
                 "pgp, rasta)\n",
                 Want);
    return 2;
  }

  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();

  Machine MB(Baseline);
  MB.setInput(W.TimingInput);
  RunResult Base = MB.run();
  if (Base.Status != RunStatus::Halted) {
    std::fprintf(stderr, "baseline run failed: %s\n",
                 Base.FaultMessage.c_str());
    return 1;
  }

  std::printf("== %s: threshold exploration ==\n", W.Name.c_str());
  std::printf("program: %llu instructions; profile: %llu executed; timing "
              "baseline: %llu cycles\n\n",
              (unsigned long long)W.Prog.instructionCount(),
              (unsigned long long)Prof.TotalInstructions,
              (unsigned long long)Base.Cycles);
  std::printf("%-10s %7s %8s %8s %9s %8s %8s %9s %11s\n", "theta", "cold%",
              "regions", "stubs", "blob(B)", "size", "time", "decomps",
              "max stubs");

  for (double Theta : {0.0, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 1.0}) {
    Options Opts;
    Opts.Theta = Theta;
    SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();
    if (SR.Identity) {
      std::printf("%-10g   (nothing profitable)\n", Theta);
      continue;
    }
    SquashedRun Run = runSquashed(SR.SP, W.TimingInput);
    if (Run.Run.Status != RunStatus::Halted) {
      std::printf("%-10g   RUN FAILED: %s\n", Theta,
                  Run.Run.FaultMessage.c_str());
      return 1;
    }
    uint32_t Stubs = SR.SP.Footprint.EntryStubWords / 2;
    std::printf("%-10g %6.1f%% %8llu %8u %9u %8.3f %8.3f %9llu %11u\n",
                Theta, 100.0 * SR.Cold.coldFraction(),
                (unsigned long long)SR.Regions.PackedRegions, Stubs,
                SR.SP.Footprint.CompressedBytes,
                1.0 - SR.SP.Footprint.reduction(),
                static_cast<double>(Run.Run.Cycles) /
                    static_cast<double>(Base.Cycles),
                (unsigned long long)Run.Runtime.Decompressions,
                Run.Runtime.MaxLiveStubs);
  }

  std::printf("\ncolumns: size/time are relative to the compacted "
              "baseline; 'decomps' counts runtime buffer fills on the "
              "timing input.\n");
  return 0;
}
